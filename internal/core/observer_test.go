package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// recordingObserver collects per-stage timings; safe for concurrent use
// like the contract requires.
type recordingObserver struct {
	mu     sync.Mutex
	stages []Stage
	total  map[Stage]time.Duration
	calls  map[Stage]int
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{total: make(map[Stage]time.Duration), calls: make(map[Stage]int)}
}

func (o *recordingObserver) ObserveStage(s Stage, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stages = append(o.stages, s)
	o.total[s] += d
	o.calls[s]++
}

// TestObserverStageSequence: a full detector round reports its four
// stages exactly once each, in pipeline order, with non-negative
// durations; a monitor round additionally leads with the window stage.
func TestObserverStageSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	series := sybilCluster(rng, 4)
	obs := newRecordingObserver()
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	cfg.Observer = obs
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(series, 20); err != nil {
		t.Fatal(err)
	}
	want := []Stage{StageCollect, StageNormalize, StageCompare, StageConfirm}
	if len(obs.stages) != len(want) {
		t.Fatalf("stages = %v, want %v", obs.stages, want)
	}
	for i, s := range want {
		if obs.stages[i] != s {
			t.Fatalf("stage %d = %v, want %v", i, obs.stages[i], s)
		}
	}
	for s, d := range obs.total {
		if d < 0 {
			t.Errorf("stage %v duration %v < 0", s, d)
		}
	}

	// Degenerate round (too few identities): only collection runs.
	obs2 := newRecordingObserver()
	cfg.Observer = obs2
	det2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det2.Detect(nil, 20); err != nil {
		t.Fatal(err)
	}
	if len(obs2.stages) != 1 || obs2.stages[0] != StageCollect {
		t.Errorf("degenerate round stages = %v, want [collect]", obs2.stages)
	}

	// Monitor round: window extraction stage leads, then the detector's
	// four; a cached repeat round reports nothing new.
	obs3 := newRecordingObserver()
	cfg.Observer = obs3
	mon, err := NewMonitor(MonitorConfig{Detector: cfg, ReorderTolerance: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range series {
		for i := 0; i < s.Len(); i++ {
			sample := s.At(i)
			if err := mon.Observe(id, sample.T, sample.RSSI); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := mon.Detect(); err != nil {
		t.Fatal(err)
	}
	if obs3.calls[StageWindow] != 1 {
		t.Errorf("monitor round reported window stage %d times, want 1", obs3.calls[StageWindow])
	}
	if obs3.calls[StageCompare] != 1 {
		t.Errorf("monitor round reported compare stage %d times, want 1", obs3.calls[StageCompare])
	}
	before := len(obs3.stages)
	if _, err := mon.Detect(); err != nil { // unchanged → cached
		t.Fatal(err)
	}
	if len(obs3.stages) != before {
		t.Errorf("cached round reported %d extra stages", len(obs3.stages)-before)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageWindow:    "window",
		StageCollect:   "collect",
		StageNormalize: "normalize",
		StageCompare:   "compare",
		StageConfirm:   "confirm",
		NumStages:      "unknown",
	}
	for s, label := range want {
		if s.String() != label {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), label)
		}
	}
}

// TestObserveReorderTolerance: the configured tolerance makes Observe
// behave exactly like the deprecated ObserveClamped — late-but-tolerable
// samples clamp forward, older ones reject — while the zero-value config
// keeps strict monotonicity.
func TestObserveReorderTolerance(t *testing.T) {
	strict, err := NewMonitor(MonitorConfig{Detector: DefaultConfig(testBoundary())})
	if err != nil {
		t.Fatal(err)
	}
	if err := strict.Observe(1, time.Second, -60); err != nil {
		t.Fatal(err)
	}
	if err := strict.Observe(1, 900*time.Millisecond, -60); err == nil {
		t.Error("strict monitor accepted a regressed timestamp")
	}

	cfg := MonitorConfig{Detector: DefaultConfig(testBoundary()), ReorderTolerance: 200 * time.Millisecond}
	tol, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tol.Observe(1, time.Second, -60); err != nil {
		t.Fatal(err)
	}
	if err := tol.Observe(2, 900*time.Millisecond, -61); err != nil {
		t.Errorf("within-tolerance sample rejected: %v", err)
	}
	if got := tol.Now(); got != time.Second {
		t.Errorf("clock moved to %v after clamped sample, want 1s", got)
	}
	if err := tol.Observe(2, 700*time.Millisecond, -61); err == nil {
		t.Error("sample older than the tolerance accepted")
	}

	// Negative tolerance normalizes to strict.
	neg, err := NewMonitor(MonitorConfig{Detector: DefaultConfig(testBoundary()), ReorderTolerance: -time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := neg.Observe(1, time.Second, -60); err != nil {
		t.Fatal(err)
	}
	if err := neg.Observe(1, 999*time.Millisecond, -60); err == nil {
		t.Error("negative-tolerance monitor accepted a regressed timestamp")
	}
}
