package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"voiceprint/internal/vanet"
)

func testMonitor(t *testing.T, confirmWindow, confirmNeed int) *Monitor {
	t.Helper()
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	m, err := NewMonitor(MonitorConfig{
		Detector:      cfg,
		ConfirmWindow: confirmWindow,
		ConfirmNeed:   confirmNeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorDetectsCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	m := testMonitor(t, 1, 1)
	// Feed identity-by-identity is not time-monotone; stream per step
	// instead.
	series := sybilCluster(rng, 5)
	maxLen := 0
	for _, s := range series {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	idx := make(map[vanet.NodeID]int, len(series))
	for step := 0; step < maxLen; step++ {
		for id, s := range series {
			i := idx[id]
			if i >= s.Len() {
				continue
			}
			smp := s.At(i)
			if smp.T <= time.Duration(step)*beat {
				if err := m.Observe(id, time.Duration(step)*beat, smp.RSSI); err != nil {
					t.Fatal(err)
				}
				idx[id] = i + 1
			}
		}
	}
	res, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []vanet.NodeID{1, 101, 102} {
		if !res.Suspects[id] {
			t.Errorf("cluster identity %d not flagged", id)
		}
	}
	confirmed := m.Confirmed()
	if !confirmed[1] || !confirmed[101] || !confirmed[102] {
		t.Errorf("confirmed = %v, want the cluster", confirmed)
	}
}

func TestMonitorRejectsBackwardsTime(t *testing.T) {
	m := testMonitor(t, 1, 1)
	if err := m.Observe(1, time.Second, -70); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(2, 500*time.Millisecond, -70); err == nil {
		t.Error("backwards observation should error")
	}
}

func TestMonitorEvictsSilentIdentities(t *testing.T) {
	m := testMonitor(t, 1, 1)
	if err := m.Observe(7, 0, -70); err != nil {
		t.Fatal(err)
	}
	if m.Tracked() != 1 {
		t.Fatalf("tracked = %d", m.Tracked())
	}
	// Keep another identity alive far past the eviction horizon.
	for ts := time.Duration(0); ts < 2*time.Minute; ts += time.Second {
		if err := m.Observe(8, ts, -72); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Detect(); err != nil {
		t.Fatal(err)
	}
	if m.Tracked() != 1 {
		t.Errorf("tracked = %d after eviction, want 1 (identity 8)", m.Tracked())
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Detector: Config{MinSamples: -1}}); err == nil {
		t.Error("bad detector config should error")
	}
	if _, err := NewMonitor(MonitorConfig{Detector: DefaultConfig(testBoundary()), MaxRangeM: -5}); err == nil {
		t.Error("negative range should error")
	}
	if _, err := NewMonitor(MonitorConfig{Detector: DefaultConfig(testBoundary()), ConfirmWindow: 2, ConfirmNeed: 5}); err == nil {
		t.Error("need > window should error")
	}
}

func TestMonitorHonorsEvictAfter(t *testing.T) {
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	m, err := NewMonitor(MonitorConfig{Detector: cfg, EvictAfter: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(7, 0, -70); err != nil {
		t.Fatal(err)
	}
	// Keep another identity alive just past the configured horizon —
	// far short of the 2x-window default that used to be hardcoded.
	for ts := time.Duration(0); ts <= 6*time.Second; ts += time.Second {
		if err := m.Observe(8, ts, -72); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Detect(); err != nil {
		t.Fatal(err)
	}
	if m.Tracked() != 1 {
		t.Errorf("tracked = %d after eviction, want 1 (identity 8)", m.Tracked())
	}
	if m.Evicted() != 1 {
		t.Errorf("evicted counter = %d, want 1", m.Evicted())
	}
	if _, err := NewMonitor(MonitorConfig{Detector: cfg, EvictAfter: -time.Second}); err == nil {
		t.Error("negative EvictAfter should error")
	}
}

func TestConfirmerSnapshotIsReadOnly(t *testing.T) {
	c, err := NewConfirmer(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	heard := []vanet.NodeID{1}
	c.Update(heard, map[vanet.NodeID]bool{1: true})
	// Polling confirmation state between rounds must not advance the
	// K-of-N window.
	for i := 0; i < 5; i++ {
		if got := c.Confirmed(); len(got) != 0 {
			t.Fatalf("confirmed after 1 of 2 needed flags: %v", got)
		}
	}
	if got := c.Update(heard, map[vanet.NodeID]bool{1: true}); !got[1] {
		t.Errorf("second flagged round must confirm, got %v", got)
	}
	if got := c.Confirmed(); !got[1] {
		t.Errorf("snapshot after confirmation = %v", got)
	}
}

// TestMonitorObserveClamped is the dedicated coverage for the deprecated
// compatibility shim; every other caller has migrated to
// MonitorConfig.ReorderTolerance with Observe.
func TestMonitorObserveClamped(t *testing.T) {
	m := testMonitor(t, 1, 1)
	if err := m.Observe(1, time.Second, -70); err != nil {
		t.Fatal(err)
	}
	// Slightly late: clamped forward, clock unchanged.
	if err := m.ObserveClamped(2, 900*time.Millisecond, -71, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if m.Now() != time.Second {
		t.Errorf("Now = %v, want clock pinned at 1s", m.Now())
	}
	// Beyond tolerance: rejected.
	if err := m.ObserveClamped(3, 100*time.Millisecond, -72, 500*time.Millisecond); !errors.Is(err, ErrTimeBackwards) {
		t.Errorf("stale observation err = %v, want ErrTimeBackwards", err)
	}
	if m.Tracked() != 2 {
		t.Errorf("tracked = %d, want 2", m.Tracked())
	}
}

// TestMonitorConcurrentAccess exercises the monitor's thread safety:
// concurrent feeders and a detector loop, meaningful under -race.
func TestMonitorConcurrentAccess(t *testing.T) {
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	m, err := NewMonitor(MonitorConfig{
		Detector:         cfg,
		ConfirmWindow:    3,
		ConfirmNeed:      2,
		ReorderTolerance: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := vanet.NodeID(10 + g)
			for i := 0; i < 300; i++ {
				t := time.Duration(i) * 10 * time.Millisecond
				_ = m.Observe(id, t, -70+float64(g))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := m.Detect(); err != nil {
				t.Error(err)
				return
			}
			_ = m.Confirmed()
			_ = m.Tracked()
			_ = m.Now()
			_ = m.Evicted()
		}
	}()
	wg.Wait()
	if m.Tracked() != 4 {
		t.Errorf("tracked = %d, want 4", m.Tracked())
	}
}

func TestMonitorMultiPeriodConfirmation(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	m := testMonitor(t, 3, 2)
	// One noisy round must not confirm; two must.
	start := time.Duration(0)
	feedOrdered := func(offset time.Duration) {
		series := sybilCluster(rng, 4)
		maxLen := 0
		for _, s := range series {
			if s.Len() > maxLen {
				maxLen = s.Len()
			}
		}
		idx := make(map[vanet.NodeID]int, len(series))
		for step := 0; step < maxLen; step++ {
			for id, s := range series {
				i := idx[id]
				if i >= s.Len() {
					continue
				}
				if s.At(i).T <= time.Duration(step)*beat {
					_ = m.Observe(id, offset+time.Duration(step)*beat, s.At(i).RSSI)
					idx[id] = i + 1
				}
			}
		}
	}
	feedOrdered(start)
	res1, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Confirmed()) != 0 {
		t.Errorf("one round must not confirm with need=2, got %v", m.Confirmed())
	}
	feedOrdered(20 * time.Second)
	res2, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	confirmed := m.Confirmed()
	// Identities flagged in both rounds must be confirmed; flagged-once
	// identities must not be (the rule needs 2 of the last 3 rounds).
	for id := range res1.Suspects {
		if res2.Suspects[id] && !confirmed[id] {
			t.Errorf("identity %d flagged twice but not confirmed", id)
		}
		if !res2.Suspects[id] && confirmed[id] {
			t.Errorf("identity %d flagged once but confirmed", id)
		}
	}
	// No normal identity sneaks in.
	for id := range confirmed {
		if id < 100 && id != 1 {
			t.Errorf("normal identity %d confirmed", id)
		}
	}
	if len(confirmed) == 0 {
		t.Error("repeat offenders should be confirmed after two rounds")
	}
}

// TestDetectAtHonorsRequestedBoundary is the regression test for the
// fixed-boundary drift bug: DetectAt(at) used to run the round at
// max(at, monitor clock), so once observations streamed past the boundary
// the requested window silently widened to the newest beacon. An identity
// heard only AFTER the boundary must not appear in the round.
func TestDetectAtHonorsRequestedBoundary(t *testing.T) {
	m := testMonitor(t, 1, 1)
	for step := 0; step <= 240; step++ { // 0..24 s at 10 Hz
		at := time.Duration(step) * beat
		for _, id := range []vanet.NodeID{1, 2, 3} {
			if err := m.Observe(id, at, -60-float64(id)); err != nil {
				t.Fatal(err)
			}
		}
		if at > 20*time.Second {
			// Identity 99 exists only in (20 s, 24 s]: 39 samples, enough
			// to clear MinSamples if it leaked into the window.
			if err := m.Observe(99, at, -55); err != nil {
				t.Fatal(err)
			}
		}
	}
	boundary := 20 * time.Second
	res, err := m.DetectAt(boundary)
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowEnd != boundary {
		t.Errorf("WindowEnd = %v, want the requested boundary %v", res.WindowEnd, boundary)
	}
	for _, id := range res.Considered {
		if id == 99 {
			t.Fatalf("identity heard only after the %v boundary leaked into the round (Considered = %v)",
				boundary, res.Considered)
		}
	}
	if len(res.Considered) != 3 {
		t.Errorf("Considered = %v, want ids 1..3", res.Considered)
	}
	if m.Now() < 24*time.Second {
		t.Errorf("monitor clock regressed to %v", m.Now())
	}
}

// TestMonitorUnchangedRoundCache: a round whose input fingerprint
// (observation version, window end) matches the previous round reuses its
// result — but the K-of-N confirmation history must still advance.
func TestMonitorUnchangedRoundCache(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	m := testMonitor(t, 5, 3)
	series := sybilCluster(rng, 5)
	maxLen := 0
	for _, s := range series {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	idx := make(map[vanet.NodeID]int, len(series))
	for step := 0; step < maxLen; step++ {
		for id, s := range series {
			i := idx[id]
			if i >= s.Len() {
				continue
			}
			if s.At(i).T <= time.Duration(step)*beat {
				if err := m.Observe(id, time.Duration(step)*beat, s.At(i).RSSI); err != nil {
					t.Fatal(err)
				}
				idx[id] = i + 1
			}
		}
	}
	res1, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cached {
		t.Fatal("first round must not be cached")
	}
	if len(res1.Suspects) == 0 {
		t.Fatal("cluster not flagged; cache test needs a flagging round")
	}
	if len(res1.Confirmed) != 0 {
		t.Fatalf("confirmed after 1 of need-3 rounds: %v", res1.Confirmed)
	}
	res2, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("identical second round should hit the unchanged-round cache")
	}
	res3, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Cached {
		t.Fatal("identical third round should hit the unchanged-round cache")
	}
	if m.CachedRounds() != 2 {
		t.Errorf("CachedRounds = %d, want 2", m.CachedRounds())
	}
	// Bit-identical payload.
	if len(res2.Pairs) != len(res1.Pairs) || res2.WindowEnd != res1.WindowEnd {
		t.Errorf("cached round differs: %d pairs end %v vs %d pairs end %v",
			len(res2.Pairs), res2.WindowEnd, len(res1.Pairs), res1.WindowEnd)
	}
	for i := range res1.Pairs {
		if res1.Pairs[i] != res2.Pairs[i] {
			t.Fatalf("cached pair %d differs: %+v vs %+v", i, res2.Pairs[i], res1.Pairs[i])
		}
	}
	for id := range res1.Suspects {
		if !res3.Suspects[id] {
			t.Errorf("cached round lost suspect %d", id)
		}
	}
	// Three flagging rounds → the 3-of-5 rule confirms, proving cached
	// rounds still advance the confirmation history.
	for id := range res1.Suspects {
		if !res3.Confirmed[id] {
			t.Errorf("suspect %d not confirmed after 3 rounds (cached rounds must advance K-of-N)", id)
		}
	}
	// A new observation invalidates the cache.
	if err := m.Observe(1, m.Now()+beat, -60); err != nil {
		t.Fatal(err)
	}
	res4, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if res4.Cached {
		t.Error("round after a new observation must not be cached")
	}
	// Same version but a different window end is also a miss.
	res5, err := m.DetectAt(m.Now() + time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res5.Cached {
		t.Error("round at a new window end must not be cached")
	}
}
