package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"voiceprint/internal/vanet"
)

func testMonitor(t *testing.T, confirmWindow, confirmNeed int) *Monitor {
	t.Helper()
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	m, err := NewMonitor(MonitorConfig{
		Detector:      cfg,
		ConfirmWindow: confirmWindow,
		ConfirmNeed:   confirmNeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorDetectsCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	m := testMonitor(t, 1, 1)
	// Feed identity-by-identity is not time-monotone; stream per step
	// instead.
	series := sybilCluster(rng, 5)
	maxLen := 0
	for _, s := range series {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	idx := make(map[vanet.NodeID]int, len(series))
	for step := 0; step < maxLen; step++ {
		for id, s := range series {
			i := idx[id]
			if i >= s.Len() {
				continue
			}
			smp := s.At(i)
			if smp.T <= time.Duration(step)*beat {
				if err := m.Observe(id, time.Duration(step)*beat, smp.RSSI); err != nil {
					t.Fatal(err)
				}
				idx[id] = i + 1
			}
		}
	}
	res, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []vanet.NodeID{1, 101, 102} {
		if !res.Suspects[id] {
			t.Errorf("cluster identity %d not flagged", id)
		}
	}
	confirmed := m.Confirmed()
	if !confirmed[1] || !confirmed[101] || !confirmed[102] {
		t.Errorf("confirmed = %v, want the cluster", confirmed)
	}
}

func TestMonitorRejectsBackwardsTime(t *testing.T) {
	m := testMonitor(t, 1, 1)
	if err := m.Observe(1, time.Second, -70); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(2, 500*time.Millisecond, -70); err == nil {
		t.Error("backwards observation should error")
	}
}

func TestMonitorEvictsSilentIdentities(t *testing.T) {
	m := testMonitor(t, 1, 1)
	if err := m.Observe(7, 0, -70); err != nil {
		t.Fatal(err)
	}
	if m.Tracked() != 1 {
		t.Fatalf("tracked = %d", m.Tracked())
	}
	// Keep another identity alive far past the eviction horizon.
	for ts := time.Duration(0); ts < 2*time.Minute; ts += time.Second {
		if err := m.Observe(8, ts, -72); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Detect(); err != nil {
		t.Fatal(err)
	}
	if m.Tracked() != 1 {
		t.Errorf("tracked = %d after eviction, want 1 (identity 8)", m.Tracked())
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Detector: Config{MinSamples: -1}}); err == nil {
		t.Error("bad detector config should error")
	}
	if _, err := NewMonitor(MonitorConfig{Detector: DefaultConfig(testBoundary()), MaxRangeM: -5}); err == nil {
		t.Error("negative range should error")
	}
	if _, err := NewMonitor(MonitorConfig{Detector: DefaultConfig(testBoundary()), ConfirmWindow: 2, ConfirmNeed: 5}); err == nil {
		t.Error("need > window should error")
	}
}

func TestMonitorHonorsEvictAfter(t *testing.T) {
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	m, err := NewMonitor(MonitorConfig{Detector: cfg, EvictAfter: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(7, 0, -70); err != nil {
		t.Fatal(err)
	}
	// Keep another identity alive just past the configured horizon —
	// far short of the 2x-window default that used to be hardcoded.
	for ts := time.Duration(0); ts <= 6*time.Second; ts += time.Second {
		if err := m.Observe(8, ts, -72); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Detect(); err != nil {
		t.Fatal(err)
	}
	if m.Tracked() != 1 {
		t.Errorf("tracked = %d after eviction, want 1 (identity 8)", m.Tracked())
	}
	if m.Evicted() != 1 {
		t.Errorf("evicted counter = %d, want 1", m.Evicted())
	}
	if _, err := NewMonitor(MonitorConfig{Detector: cfg, EvictAfter: -time.Second}); err == nil {
		t.Error("negative EvictAfter should error")
	}
}

func TestConfirmerSnapshotIsReadOnly(t *testing.T) {
	c, err := NewConfirmer(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	heard := []vanet.NodeID{1}
	c.Update(heard, map[vanet.NodeID]bool{1: true})
	// Polling confirmation state between rounds must not advance the
	// K-of-N window.
	for i := 0; i < 5; i++ {
		if got := c.Confirmed(); len(got) != 0 {
			t.Fatalf("confirmed after 1 of 2 needed flags: %v", got)
		}
	}
	if got := c.Update(heard, map[vanet.NodeID]bool{1: true}); !got[1] {
		t.Errorf("second flagged round must confirm, got %v", got)
	}
	if got := c.Confirmed(); !got[1] {
		t.Errorf("snapshot after confirmation = %v", got)
	}
}

func TestMonitorObserveClamped(t *testing.T) {
	m := testMonitor(t, 1, 1)
	if err := m.Observe(1, time.Second, -70); err != nil {
		t.Fatal(err)
	}
	// Slightly late: clamped forward, clock unchanged.
	if err := m.ObserveClamped(2, 900*time.Millisecond, -71, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if m.Now() != time.Second {
		t.Errorf("Now = %v, want clock pinned at 1s", m.Now())
	}
	// Beyond tolerance: rejected.
	if err := m.ObserveClamped(3, 100*time.Millisecond, -72, 500*time.Millisecond); !errors.Is(err, ErrTimeBackwards) {
		t.Errorf("stale observation err = %v, want ErrTimeBackwards", err)
	}
	if m.Tracked() != 2 {
		t.Errorf("tracked = %d, want 2", m.Tracked())
	}
}

// TestMonitorConcurrentAccess exercises the monitor's thread safety:
// concurrent feeders and a detector loop, meaningful under -race.
func TestMonitorConcurrentAccess(t *testing.T) {
	m := testMonitor(t, 3, 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := vanet.NodeID(10 + g)
			for i := 0; i < 300; i++ {
				t := time.Duration(i) * 10 * time.Millisecond
				_ = m.ObserveClamped(id, t, -70+float64(g), time.Hour)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := m.Detect(); err != nil {
				t.Error(err)
				return
			}
			_ = m.Confirmed()
			_ = m.Tracked()
			_ = m.Now()
			_ = m.Evicted()
		}
	}()
	wg.Wait()
	if m.Tracked() != 4 {
		t.Errorf("tracked = %d, want 4", m.Tracked())
	}
}

func TestMonitorMultiPeriodConfirmation(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	m := testMonitor(t, 3, 2)
	// One noisy round must not confirm; two must.
	start := time.Duration(0)
	feedOrdered := func(offset time.Duration) {
		series := sybilCluster(rng, 4)
		maxLen := 0
		for _, s := range series {
			if s.Len() > maxLen {
				maxLen = s.Len()
			}
		}
		idx := make(map[vanet.NodeID]int, len(series))
		for step := 0; step < maxLen; step++ {
			for id, s := range series {
				i := idx[id]
				if i >= s.Len() {
					continue
				}
				if s.At(i).T <= time.Duration(step)*beat {
					_ = m.Observe(id, offset+time.Duration(step)*beat, s.At(i).RSSI)
					idx[id] = i + 1
				}
			}
		}
	}
	feedOrdered(start)
	res1, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Confirmed()) != 0 {
		t.Errorf("one round must not confirm with need=2, got %v", m.Confirmed())
	}
	feedOrdered(20 * time.Second)
	res2, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	confirmed := m.Confirmed()
	// Identities flagged in both rounds must be confirmed; flagged-once
	// identities must not be (the rule needs 2 of the last 3 rounds).
	for id := range res1.Suspects {
		if res2.Suspects[id] && !confirmed[id] {
			t.Errorf("identity %d flagged twice but not confirmed", id)
		}
		if !res2.Suspects[id] && confirmed[id] {
			t.Errorf("identity %d flagged once but confirmed", id)
		}
	}
	// No normal identity sneaks in.
	for id := range confirmed {
		if id < 100 && id != 1 {
			t.Errorf("normal identity %d confirmed", id)
		}
	}
	if len(confirmed) == 0 {
		t.Error("repeat offenders should be confirmed after two rounds")
	}
}
