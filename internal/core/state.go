package core

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// MonitorState is a deep, self-contained copy of everything a Monitor
// needs to resume detection after a restart: the monitor clock, the
// retained per-identity RSSI series, the K-of-N confirmation history and
// the density estimator's known-Sybil set. It deliberately excludes the
// unchanged-round cache, the dirty-pair cache and the reusable scratch
// maps — those rebuild on the first rounds without changing any result —
// and the configuration, which the restoring side supplies (state only
// round-trips between identically configured monitors).
//
// All slices are sorted by identity so that two captures of the same
// monitor are byte-identical when serialized: the WAL layer depends on
// this for its crash-determinism tests.
type MonitorState struct {
	Now        time.Duration
	Evicted    uint64
	Identities []IdentityState
	Confirm    []ConfirmState
	KnownSybil []vanet.NodeID
}

// IdentityState is one tracked identity's retained series, plus — on
// fusion-enabled monitors — its retained claimed-position samples.
type IdentityState struct {
	ID      vanet.NodeID
	LastObs time.Duration
	Samples []timeseries.Sample
	// Claims holds the identity's claimed-position evidence in reception
	// order; empty on plain monitors and for identities whose beacons
	// carried no position.
	Claims []ClaimSample
}

// ConfirmState is one identity's K-of-N flag history, oldest first.
type ConfirmState struct {
	ID    vanet.NodeID
	Flags []bool
}

// State captures the monitor's durable state. The copy is deep: the
// returned value shares no memory with the monitor and stays valid while
// the monitor keeps ingesting.
func (m *Monitor) State() *MonitorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &MonitorState{Now: m.now, Evicted: m.evicted}

	ids := make([]vanet.NodeID, 0, len(m.series))
	for id := range m.series {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	st.Identities = make([]IdentityState, 0, len(ids))
	for _, id := range ids {
		s := m.series[id]
		ident := IdentityState{
			ID:      id,
			LastObs: m.lastObs[id],
			Samples: make([]timeseries.Sample, s.Len()),
		}
		for i := range ident.Samples {
			ident.Samples[i] = s.At(i)
		}
		if cs := m.claims[id]; len(cs) > 0 {
			ident.Claims = slices.Clone(cs)
		}
		st.Identities = append(st.Identities, ident)
	}

	cids := make([]vanet.NodeID, 0, len(m.confirmer.history))
	for id := range m.confirmer.history {
		cids = append(cids, id)
	}
	slices.Sort(cids)
	st.Confirm = make([]ConfirmState, 0, len(cids))
	for _, id := range cids {
		st.Confirm = append(st.Confirm, ConfirmState{
			ID:    id,
			Flags: slices.Clone(m.confirmer.history[id]),
		})
	}

	for id := range m.estimator.knownSybil {
		st.KnownSybil = append(st.KnownSybil, id)
	}
	slices.Sort(st.KnownSybil)
	return st
}

// RestoreState loads a previously captured state into a freshly built
// monitor. The monitor must not have ingested anything yet — restore is
// a boot-time operation, not a merge — and the state must have been
// captured by a monitor with the same configuration. Sample and flag
// contents are validated (finite RSSI, monotone timestamps) because the
// state typically crossed a disk boundary.
func (m *Monitor) RestoreState(st *MonitorState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.series) != 0 || len(m.confirmer.history) != 0 || m.now != 0 || m.evicted != 0 {
		return errors.New("core: RestoreState on a monitor that already has state")
	}
	for _, ident := range st.Identities {
		if _, dup := m.series[ident.ID]; dup {
			return fmt.Errorf("core: restore: duplicate identity %d", ident.ID)
		}
		n := len(ident.Samples)
		if n < 64 {
			n = 64
		}
		s := timeseries.New(n)
		for _, smp := range ident.Samples {
			if err := s.AppendChecked(smp.T, smp.RSSI); err != nil {
				return fmt.Errorf("core: restore identity %d: %w", ident.ID, err)
			}
		}
		m.series[ident.ID] = s
		m.lastObs[ident.ID] = ident.LastObs
		if len(ident.Claims) > 0 && m.claims != nil {
			prev := time.Duration(-1 << 62)
			for _, c := range ident.Claims {
				if !finiteClaim(c) {
					return fmt.Errorf("core: restore identity %d: %w", ident.ID, ErrNonFinitePosition)
				}
				if c.T < prev {
					return fmt.Errorf("core: restore identity %d: claim time went backwards", ident.ID)
				}
				prev = c.T
			}
			m.claims[ident.ID] = slices.Clone(ident.Claims)
		}
		m.version += uint64(len(ident.Samples))
		// Re-anchor the identity's observation version as if its samples
		// had streamed in; the dirty-pair cache starts cold either way
		// (it is not serialized — it rebuilds in one round and storing it
		// would grow the WAL format for no change in results), but the
		// fingerprints must be populated for rounds after the restore.
		m.obsVer[ident.ID] = m.version
	}
	for _, c := range st.Confirm {
		if _, dup := m.confirmer.history[c.ID]; dup {
			return fmt.Errorf("core: restore: duplicate confirm history for %d", c.ID)
		}
		flags := slices.Clone(c.Flags)
		// A capture from a wider-window configuration still restores: only
		// the newest window-many rounds can influence future verdicts.
		if len(flags) > m.confirmer.window {
			flags = flags[len(flags)-m.confirmer.window:]
		}
		m.confirmer.history[c.ID] = flags
	}
	for _, id := range st.KnownSybil {
		m.estimator.knownSybil[id] = true
	}
	m.now = st.Now
	m.evicted = st.Evicted
	m.version++
	return nil
}
