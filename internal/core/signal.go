package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// Signal is one pluggable detection signal: a pure function from one
// round's windowed evidence to per-identity verdicts and scores. The
// Voiceprint DTW pipeline is the first Signal (VoiceprintSignal); the
// fusion package adds claimed-position consistency and, at the service
// layer, cross-receiver clique grouping. The Monitor runs every
// configured Signal over the same observation window each round and
// fuses the suspect sets.
//
// Contract: Analyze must be deterministic — a pure function of the
// input — and must treat the input as read-only (Series are zero-copy
// views into the monitor's ring buffers; Claims share the monitor's
// backing array). Scores must be finite; identities a signal cannot
// test simply do not appear in the result.
type Signal interface {
	// Name identifies the signal in Result.Signals attribution maps and
	// wire events ("voiceprint", "position", ...). Names must be
	// non-empty and unique within a fusion configuration.
	Name() string
	// Analyze runs the signal over one round's window.
	Analyze(in *SignalInput) (*SignalResult, error)
}

// ClaimSample is one beacon's claimed-position evidence: where the
// sender claimed to be — in the receiver's local frame, meters — and
// the RSSI it was actually received at.
type ClaimSample struct {
	// T is the (monitor-clamped) reception time.
	T time.Duration
	// X and Y are the claimed position relative to the receiver, so the
	// claimed range is hypot(X, Y).
	X, Y float64
	// RSSI is the received signal strength of the same beacon (dBm).
	RSSI float64
}

// SignalInput is one round's evidence, shared by every signal.
type SignalInput struct {
	// WindowStart and WindowEnd bound the observation window
	// [WindowStart, WindowEnd] the evidence was sliced from.
	WindowStart, WindowEnd time.Duration
	// Density is the Equation 9 density estimate for the round.
	Density float64
	// Series maps each heard identity to its windowed RSSI series
	// (read-only zero-copy views).
	Series map[vanet.NodeID]*timeseries.Series
	// Claims maps each identity to its claimed-position samples inside
	// the window, in reception order. Identities whose beacons carried
	// no position are absent.
	Claims map[vanet.NodeID][]ClaimSample
}

// SignalResult is one signal's verdict for one round.
type SignalResult struct {
	// Suspects holds the identities this signal flags.
	Suspects map[vanet.NodeID]bool
	// Scores holds per-identity evidence strength for attribution (the
	// meaning is signal-specific: normalized DTW distance, chi-square
	// statistic, ...). Scores may cover tested-but-clean identities.
	Scores map[vanet.NodeID]float64
	// Tested lists the identities the signal had enough evidence to
	// judge, ascending. Fusion unions these into Result.Considered so a
	// flagged identity is always accounted in the round it was flagged.
	Tested []vanet.NodeID
	// Pairs optionally carries per-pair evidence (the voiceprint signal
	// reports its DTW comparisons here).
	Pairs []PairDistance
	// Skipped counts identities with too little evidence to judge.
	Skipped int
}

// FusionOptions is the single fusion knob block on MonitorConfig: the
// extra signals a monitor runs after the Voiceprint round. The zero
// value disables fusion entirely and is bit-identical to the
// single-signal pipeline.
type FusionOptions struct {
	// Enabled turns the fusion round on. When false the monitor ignores
	// claimed positions and Signals.
	Enabled bool
	// Signals are the additional per-receiver signals, run in order
	// after the built-in Voiceprint comparison each round. Each must
	// have a unique non-empty Name; signals that also implement
	// Validate() error are validated at monitor construction.
	Signals []Signal
}

// SignalName is the attribution key of the built-in DTW signal.
const SignalName = "voiceprint"

// Validate rejects malformed fusion configurations: nil signals,
// duplicate or reserved names, and — via each signal's own Validate —
// non-finite thresholds.
func (o FusionOptions) Validate() error {
	if !o.Enabled {
		if len(o.Signals) > 0 {
			return errors.New("core: fusion signals configured but Enabled is false")
		}
		return nil
	}
	seen := make(map[string]bool, len(o.Signals)+1)
	seen[SignalName] = true
	for i, s := range o.Signals {
		if s == nil {
			return fmt.Errorf("core: fusion signal %d is nil", i)
		}
		name := s.Name()
		if name == "" {
			return fmt.Errorf("core: fusion signal %d has an empty name", i)
		}
		if seen[name] {
			return fmt.Errorf("core: duplicate fusion signal name %q", name)
		}
		seen[name] = true
		if v, ok := s.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("core: fusion signal %q: %w", name, err)
			}
		}
	}
	return nil
}

// VoiceprintSignal re-expresses the monolithic DTW compare path as a
// Signal: Z-score normalization, pairwise banded DTW, Equation 8 batch
// normalization and the density-adaptive LDA boundary. Its suspect set
// and pair evidence are bit-identical to Detector.Detect over the same
// input — the adapter adds only the per-identity score projection.
type VoiceprintSignal struct {
	det *Detector
}

// NewVoiceprintSignal builds the signal from a detector configuration.
func NewVoiceprintSignal(cfg Config) (*VoiceprintSignal, error) {
	det, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &VoiceprintSignal{det: det}, nil
}

// Name implements Signal.
func (s *VoiceprintSignal) Name() string { return SignalName }

// Analyze implements Signal by running the DTW round over the windowed
// series. Claims are unused: Voiceprint is the position-free signal.
func (s *VoiceprintSignal) Analyze(in *SignalInput) (*SignalResult, error) {
	res, err := s.det.Detect(in.Series, in.Density)
	if err != nil {
		return nil, err
	}
	return &SignalResult{
		Suspects: res.Suspects,
		Scores:   VoiceprintScores(res.Pairs, nil),
		Tested:   res.Considered,
		Pairs:    res.Pairs,
		Skipped:  res.Skipped,
	}, nil
}

// VoiceprintScores projects pair evidence onto identities: each flagged
// identity's score is the smallest normalized distance among its
// flagged pairs — the strength of its best same-transmitter match. The
// result is written into dst (allocated when nil) and returned.
func VoiceprintScores(pairs []PairDistance, dst map[vanet.NodeID]float64) map[vanet.NodeID]float64 {
	if dst == nil {
		dst = make(map[vanet.NodeID]float64)
	}
	record := func(id vanet.NodeID, d float64) {
		if have, ok := dst[id]; !ok || d < have {
			dst[id] = d
		}
	}
	for i := range pairs {
		if !pairs[i].Flagged {
			continue
		}
		record(pairs[i].A, pairs[i].Normalized)
		record(pairs[i].B, pairs[i].Normalized)
	}
	return dst
}

// finiteClaim reports whether a claim sample's fields are all finite.
func finiteClaim(c ClaimSample) bool {
	return !math.IsNaN(c.X) && !math.IsInf(c.X, 0) &&
		!math.IsNaN(c.Y) && !math.IsInf(c.Y, 0) &&
		!math.IsNaN(c.RSSI) && !math.IsInf(c.RSSI, 0)
}
