package core

import (
	"errors"

	"voiceprint/internal/vanet"
)

// Confirmer implements the paper's closing suggestion: "making a final
// determination of the Sybil node after several detection periods so as to
// reduce the false positive rate". An identity is confirmed once it has
// been flagged in at least Need of the last Window rounds.
type Confirmer struct {
	window int
	need   int
	// history[id] holds the flag outcomes of the last <= window rounds.
	history map[vanet.NodeID][]bool
}

// NewConfirmer builds a Confirmer requiring need flags within a sliding
// window of rounds (1 <= need <= window).
func NewConfirmer(window, need int) (*Confirmer, error) {
	if window < 1 || need < 1 || need > window {
		return nil, errors.New("core: need 1 <= need <= window")
	}
	return &Confirmer{
		window:  window,
		need:    need,
		history: make(map[vanet.NodeID][]bool),
	}, nil
}

// Update folds in one detection round: heard lists the identities observed
// this round (absent identities carry no vote), suspects the round's
// flags. It returns the identities currently confirmed.
func (c *Confirmer) Update(heard []vanet.NodeID, suspects map[vanet.NodeID]bool) map[vanet.NodeID]bool {
	for _, id := range heard {
		h := append(c.history[id], suspects[id])
		if len(h) > c.window {
			h = h[len(h)-c.window:]
		}
		c.history[id] = h
	}
	return c.Confirmed()
}

// Confirmed returns the identities currently confirmed under the K-of-N
// rule without folding in a round. Use it to inspect confirmation state
// between detection periods.
func (c *Confirmer) Confirmed() map[vanet.NodeID]bool {
	confirmed := make(map[vanet.NodeID]bool)
	for id, h := range c.history {
		flags := 0
		for _, f := range h {
			if f {
				flags++
			}
		}
		if flags >= c.need {
			confirmed[id] = true
		}
	}
	return confirmed
}

// Forget drops an identity's history (e.g. after it leaves range for a
// long time).
func (c *Confirmer) Forget(id vanet.NodeID) {
	delete(c.history, id)
}
