package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"voiceprint/internal/lda"
	"voiceprint/internal/radio"
	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

const beat = 100 * time.Millisecond

// vehicleTrace synthesizes the noise-free RSSI trend a receiver hears
// from one physical vehicle, derived from an actual relative trajectory:
// a random closest-approach distance, approach time and relative speed
// yield a distance profile d(t) whose dual-slope path loss is the trend.
// Distinct vehicles get distinct geometry; that difference — curvature
// and the location of the closest approach, which survives Z-score
// normalization — is what Voiceprint discriminates on (Observation 3).
func vehicleTrace(rng *rand.Rand) *timeseries.Series {
	const n = 200
	model := radio.DualSlope{Params: radio.HighwayParams}
	// Vehicles keep moving relative to the receiver (the regime the paper
	// claims: "especially in the rural and highway environments where
	// vehicles can keep moving"), and — like the epoch mobility model —
	// the relative speed changes every few seconds. Those speed-change
	// kinks land at vehicle-specific times, giving each trace the
	// idiosyncratic shape Voiceprint keys on; perfectly smooth constant-
	// velocity profiles are nearly shape-degenerate after Z-scoring (a
	// speed factor becomes an additive log-domain constant).
	dy := 5 + rng.Float64()*60 // closest lateral distance, m
	dx := (rng.Float64()*2 - 1) * 400
	sign := 1.0
	if rng.Float64() < 0.5 {
		sign = -1
	}
	vrel := sign * (8 + rng.Float64()*12) // sustained relative motion
	epochLeft := rng.ExpFloat64() * 5
	values := make([]float64, n)
	for i := range values {
		d := math.Sqrt(dy*dy + dx*dx)
		values[i] = radio.RxPowerDBm(20, 0, model.MeanPathLossDB(d))
		dx += vrel * 0.1
		epochLeft -= 0.1
		if epochLeft <= 0 {
			// Epoch boundary: the relative speed magnitude changes (the
			// kink), direction persists like real overtaking traffic.
			epochLeft = rng.ExpFloat64() * 5
			vrel = sign * (8 + rng.Float64()*12)
		}
	}
	return timeseries.FromValues(values, beat)
}

// withShadow adds a correlated (AR(1), tau ~1 s) shadowing trace to a
// mean trend, mirroring the engine's per-link channel: all identities of
// one physical radio share this exact realization.
func withShadow(trend *timeseries.Series, sigma float64, rng *rand.Rand) *timeseries.Series {
	const rho = 0.905 // exp(-0.1s / 1s)
	out := timeseries.New(trend.Len())
	z := rng.NormFloat64()
	for i := 0; i < trend.Len(); i++ {
		if i > 0 {
			z = rho*z + math.Sqrt(1-rho*rho)*rng.NormFloat64()
		}
		smp := trend.At(i)
		_ = out.Append(smp.T, smp.RSSI+sigma*z)
	}
	return out
}

// sybilCluster synthesizes what a receiver hears during an attack: ids
// 1, 101, 102 share one physical transmitter — the same trend AND the
// same correlated shadowing trace (they traverse the same channel), plus
// per-identity constant TX offsets, i.i.d. measurement noise and packet
// loss. The rest are independent vehicles with their own geometry and
// their own shadowing realizations.
func sybilCluster(rng *rand.Rand, extraNormals int) map[vanet.NodeID]*timeseries.Series {
	series := make(map[vanet.NodeID]*timeseries.Series)
	addNoisy := func(id vanet.NodeID, src *timeseries.Series, offset float64) {
		s := timeseries.Shift(src, offset)
		noisy := timeseries.New(s.Len())
		for i := 0; i < s.Len(); i++ {
			smp := s.At(i)
			_ = noisy.Append(smp.T, smp.RSSI+1.0*rng.NormFloat64())
		}
		series[id] = timeseries.Drop(noisy, 0.05, rng)
	}
	base := withShadow(vehicleTrace(rng), 3.0, rng)
	addNoisy(1, base, 0)
	addNoisy(101, base, 3)  // Sybil at +3 dB TX power
	addNoisy(102, base, -3) // Sybil at -3 dB TX power
	for i := 0; i < extraNormals; i++ {
		addNoisy(vanet.NodeID(2+i), withShadow(vehicleTrace(rng), 3.0, rng), 0)
	}
	return series
}

func testBoundary() lda.Boundary {
	// Calibrated for this generator's distance distribution, the way the
	// experiments calibrate theirs by LDA training on harvested pairs
	// (Figure 10): Sybil pairs normalize to <= ~0.004, the closest
	// coincidental normal pair rarely below ~0.01.
	return lda.Boundary{K: 0.0001, B: 0.005}
}

func TestDetectFlagsSybilCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0 // keep every synthetic vehicle in view
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Score statistically over trials: the paper itself reports DR >= 90%
	// and FPR <= 10%, with occasional coincidental false positives (two
	// vehicles sharing a trajectory shape).
	const trials = 20
	var tp, illegit, fp, normal int
	for trial := 0; trial < trials; trial++ {
		series := sybilCluster(rng, 6)
		res, err := det.Detect(series, 20)
		if err != nil {
			t.Fatal(err)
		}
		illegit += 3
		normal += 6
		for _, id := range []vanet.NodeID{1, 101, 102} {
			if res.Suspects[id] {
				tp++
			}
		}
		for id := range res.Suspects {
			if id != 1 && id != 101 && id != 102 {
				fp++
			}
		}
	}
	dr := float64(tp) / float64(illegit)
	fpr := float64(fp) / float64(normal)
	if dr < 0.9 {
		t.Errorf("aggregate DR = %.3f, want >= 0.90", dr)
	}
	if fpr > 0.12 {
		t.Errorf("aggregate FPR = %.3f, want <= 0.12", fpr)
	}
}

func TestDetectPairDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0 // keep every synthetic vehicle in view
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := sybilCluster(rng, 4)
	res, err := det.Detect(series, 20)
	if err != nil {
		t.Fatal(err)
	}
	// 7 identities -> 21 pairs.
	if len(res.Pairs) != 21 {
		t.Fatalf("got %d pairs, want 21", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.Normalized < 0 || p.Normalized > 1 {
			t.Errorf("pair (%d,%d) normalized distance %v outside [0,1]", p.A, p.B, p.Normalized)
		}
		if p.Raw < 0 {
			t.Errorf("pair (%d,%d) raw distance negative", p.A, p.B)
		}
		if p.A >= p.B {
			t.Errorf("pair ordering violated: (%d,%d)", p.A, p.B)
		}
	}
	if len(res.Considered) != 7 {
		t.Errorf("considered %d identities, want 7", len(res.Considered))
	}
}

// TestDetectImmuneToTxPowerSpoofing pins Assumption 3's countermeasure:
// giving each Sybil identity a wildly different constant TX power must not
// break detection, because the Z-score normalization removes offsets.
func TestDetectImmuneToTxPowerSpoofing(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[vanet.NodeID]*timeseries.Series)
	base := timeseries.GenRandomWalk(200, -70, 1.2, -90, -50, beat, rng)
	for i, offset := range []float64{0, +10, -10} { // extreme spoofing
		id := vanet.NodeID(100 + i)
		shifted := timeseries.Shift(base, offset)
		noisy := timeseries.New(shifted.Len())
		for k := 0; k < shifted.Len(); k++ {
			smp := shifted.At(k)
			_ = noisy.Append(smp.T, smp.RSSI+0.5*rng.NormFloat64())
		}
		series[id] = noisy
	}
	for i := 0; i < 5; i++ {
		series[vanet.NodeID(1+i)] = timeseries.GenRandomWalk(200, -72, 1.2, -90, -50, beat, rng)
	}
	res, err := det.Detect(series, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []vanet.NodeID{100, 101, 102} {
		if !res.Suspects[id] {
			t.Errorf("spoofed-power Sybil %d escaped detection", id)
		}
	}
}

func TestDetectTooFewIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	det, err := New(DefaultConfig(testBoundary()))
	if err != nil {
		t.Fatal(err)
	}
	series := map[vanet.NodeID]*timeseries.Series{
		1: timeseries.GenRandomWalk(100, -70, 1, -90, -50, beat, rng),
		2: timeseries.GenRandomWalk(100, -70, 1, -90, -50, beat, rng),
	}
	res, err := det.Detect(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suspects) != 0 || len(res.Pairs) != 0 {
		t.Error("two identities should produce an empty result (degenerate min-max)")
	}
}

func TestDetectSkipsShortSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := sybilCluster(rng, 3)
	series[999] = timeseries.GenRandomWalk(3, -70, 1, -90, -50, beat, rng) // too short
	series[998] = nil
	res, err := det.Detect(series, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 2 {
		t.Errorf("Skipped = %d, want 2", res.Skipped)
	}
	for _, id := range res.Considered {
		if id == 999 || id == 998 {
			t.Error("short/nil series should not be considered")
		}
	}
}

func TestDetectNegativeDensity(t *testing.T) {
	det, err := New(DefaultConfig(testBoundary()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(nil, -1); err == nil {
		t.Error("negative density should error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MinSamples: -1}); err == nil {
		t.Error("negative MinSamples should error")
	}
	if _, err := New(Config{FastDTWRadius: -1}); err == nil {
		t.Error("negative radius should error")
	}
	if _, err := New(Config{ObservationTime: -time.Second}); err == nil {
		t.Error("negative observation time should error")
	}
	det, err := New(Config{Boundary: testBoundary()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := det.Config()
	if cfg.MinSamples != 30 || cfg.FastDTWRadius != 4 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestEstimateDensity(t *testing.T) {
	// 80 neighbors at 400 m max range -> 100 vhls/km (the paper's
	// Section VI-B extreme-case example).
	den, err := EstimateDensity(80, 400)
	if err != nil {
		t.Fatal(err)
	}
	if den != 100 {
		t.Errorf("density = %v, want 100", den)
	}
	if _, err := EstimateDensity(10, 0); err == nil {
		t.Error("zero range should error")
	}
	if _, err := EstimateDensity(-1, 400); err == nil {
		t.Error("negative count should error")
	}
}

func TestDensityEstimatorExcludesKnownSybil(t *testing.T) {
	e, err := NewDensityEstimator(400)
	if err != nil {
		t.Fatal(err)
	}
	heard := []vanet.NodeID{1, 2, 3, 101}
	if den := e.Estimate(heard); den != 5 { // 4 / 0.8
		t.Errorf("first estimate = %v, want 5", den)
	}
	e.Record(map[vanet.NodeID]bool{101: true, 55: false})
	if den := e.Estimate(heard); den != 3.75 { // 3 / 0.8
		t.Errorf("post-record estimate = %v, want 3.75", den)
	}
	if _, err := NewDensityEstimator(0); err == nil {
		t.Error("zero range should error")
	}
}

func TestConfirmer(t *testing.T) {
	c, err := NewConfirmer(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	heard := []vanet.NodeID{1, 2}
	// Round 1: id 1 flagged once -> not confirmed.
	got := c.Update(heard, map[vanet.NodeID]bool{1: true})
	if got[1] {
		t.Error("one flag of two needed should not confirm")
	}
	// Round 2: id 1 flagged again -> confirmed.
	got = c.Update(heard, map[vanet.NodeID]bool{1: true})
	if !got[1] {
		t.Error("two flags should confirm")
	}
	if got[2] {
		t.Error("never-flagged identity confirmed")
	}
	// Rounds 3-4: no more flags; the window slides the flags out.
	c.Update(heard, nil)
	got = c.Update(heard, nil)
	if got[1] {
		t.Error("stale flags should age out of the window")
	}
	// A transient false positive (1 flag in 3 rounds) never confirms.
	got = c.Update(heard, map[vanet.NodeID]bool{2: true})
	if got[2] {
		t.Error("single transient flag should not confirm")
	}
}

func TestConfirmerForget(t *testing.T) {
	c, err := NewConfirmer(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	heard := []vanet.NodeID{7}
	if got := c.Update(heard, map[vanet.NodeID]bool{7: true}); !got[7] {
		t.Fatal("flag should confirm with need=1")
	}
	c.Forget(7)
	if got := c.Update(nil, nil); got[7] {
		t.Error("forgotten identity should not stay confirmed")
	}
}

func TestConfirmerValidation(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {2, 3}} {
		if _, err := NewConfirmer(tc[0], tc[1]); err == nil {
			t.Errorf("NewConfirmer(%d, %d) should error", tc[0], tc[1])
		}
	}
}

// TestDetectMedianRSSIFloor verifies fringe identities (median RSSI below
// the floor) are excluded from comparison.
func TestDetectMedianRSSIFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = -80
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[vanet.NodeID]*timeseries.Series{
		1: timeseries.GenRandomWalk(100, -70, 1, -78, -60, beat, rng),
		2: timeseries.GenRandomWalk(100, -70, 1, -78, -60, beat, rng),
		3: timeseries.GenRandomWalk(100, -70, 1, -78, -60, beat, rng),
		9: timeseries.GenRandomWalk(100, -92, 1, -95, -86, beat, rng), // fringe
	}
	res, err := det.Detect(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1 (fringe identity)", res.Skipped)
	}
	for _, id := range res.Considered {
		if id == 9 {
			t.Error("fringe identity should not be considered")
		}
	}
}

// TestDetectAbsoluteCap verifies the cap vetoes boundary flags whose raw
// distance is too large.
func TestDetectAbsoluteCap(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	cfg := DefaultConfig(lda.Boundary{K: 0, B: 2}) // boundary flags everything
	cfg.MinMedianRSSIDBm = 0
	cfg.AbsoluteRawCap = 1e-9 // cap vetoes everything but exact matches
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := sybilCluster(rng, 4)
	res, err := det.Detect(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suspects) != 0 {
		t.Errorf("cap should veto all flags, got %d suspects", len(res.Suspects))
	}
}

// TestCompareUnconstrainedFallback exercises the BandRadius < 0 path
// (unconstrained FastDTW, the ablation configuration).
func TestCompareUnconstrainedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(118))
	cfg := DefaultConfig(testBoundary())
	cfg.BandRadius = -1
	cfg.MinMedianRSSIDBm = 0
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := sybilCluster(rng, 4)
	res, err := det.Detect(series, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs compared")
	}
	for _, id := range []vanet.NodeID{1, 101, 102} {
		if !res.Suspects[id] {
			t.Errorf("unconstrained comparison missed cluster identity %d", id)
		}
	}
}

// TestDetectParallelDeterminism: the parallel comparison phase must be
// bit-identical to the sequential loop at any worker count — pairs land
// in preassigned slots, no merge order dependence.
func TestDetectParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(119))
	series := sybilCluster(rng, 12) // 15 identities, 105 pairs
	detect := func(workers int) *Result {
		t.Helper()
		cfg := DefaultConfig(testBoundary())
		cfg.MinMedianRSSIDBm = 0
		cfg.Workers = workers
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.Detect(series, 20)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := detect(1)
	if len(seq.Pairs) != 105 {
		t.Fatalf("pairs = %d, want 105", len(seq.Pairs))
	}
	for _, workers := range []int{0, 2, 7, 32} {
		par := detect(workers)
		if len(par.Pairs) != len(seq.Pairs) {
			t.Fatalf("workers=%d: %d pairs vs %d", workers, len(par.Pairs), len(seq.Pairs))
		}
		for i := range seq.Pairs {
			if seq.Pairs[i] != par.Pairs[i] {
				t.Errorf("workers=%d pair %d: %+v != sequential %+v",
					workers, i, par.Pairs[i], seq.Pairs[i])
			}
		}
		for id := range seq.Suspects {
			if !par.Suspects[id] {
				t.Errorf("workers=%d: suspect %d missing", workers, id)
			}
		}
	}
	if _, err := New(Config{Boundary: testBoundary(), Workers: -1}); err == nil {
		t.Error("negative Workers should error")
	}
}

// TestDetectSteadyStateAllocs pins the sequential round's allocation
// budget: after warm-up a detection round allocates only the escaping
// Result payload (struct, suspect map, considered copy, pair slice) —
// every intermediate buffer comes from pooled scratch. A regression here
// means the hot path started allocating again.
func TestDetectSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	rng := rand.New(rand.NewSource(125))
	series := sybilCluster(rng, 12) // 15 identities, 105 pairs
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	cfg.Workers = 1 // goroutine fan-out itself allocates; pin the core path
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm the scratch and workspace pools
		if _, err := det.Detect(series, 20); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := det.Detect(series, 20); err != nil {
			t.Fatal(err)
		}
	})
	// 105 pairs used to cost ~55 allocations per identity plus one per
	// pair; the budget leaves headroom for the Result payload only. The
	// nil-Observer instrumentation guards must add exactly nothing here —
	// a regression means the hook stopped being free for deployments that
	// don't install one.
	if allocs > 12 {
		t.Errorf("steady-state round (nil Observer) allocates %.0f times, budget is 12", allocs)
	}

	// An installed observer may not change the budget either: stage
	// timing is clock reads plus the observer call, both allocation-free.
	obsCfg := cfg
	obsCfg.Observer = noopObserver{}
	obsDet, err := New(obsCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := obsDet.Detect(series, 20); err != nil {
			t.Fatal(err)
		}
	}
	obsAllocs := testing.AllocsPerRun(10, func() {
		if _, err := obsDet.Detect(series, 20); err != nil {
			t.Fatal(err)
		}
	})
	if obsAllocs > allocs {
		t.Errorf("observer-instrumented round allocates %.0f times vs %.0f bare; stage timing must be allocation-free", obsAllocs, allocs)
	}
}

// noopObserver is the cheapest possible Observer: the alloc test uses it
// to prove the instrumented path itself allocates nothing.
type noopObserver struct{}

func (noopObserver) ObserveStage(Stage, time.Duration) {}
