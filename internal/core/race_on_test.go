//go:build race

package core

// raceEnabled reports that this binary was built with -race, whose
// instrumentation inflates allocation counts.
const raceEnabled = true
