package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"voiceprint/internal/lda"
	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

func stateTestMonitor(t *testing.T) *Monitor {
	t.Helper()
	mon, err := NewMonitor(MonitorConfig{
		Detector:      DefaultConfig(lda.Boundary{K: 0.000025, B: 0.0067}),
		ConfirmWindow: 3,
		ConfirmNeed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// feedState drives a monitor through a few rounds of mixed traffic so
// every durable field (series, lastObs, confirm history, known-Sybil
// set, eviction counter) is non-trivial.
func feedState(t *testing.T, mon *Monitor) {
	t.Helper()
	for round := 0; round < 4; round++ {
		base := time.Duration(round) * 20 * time.Second
		for i := 0; i < 40; i++ {
			at := base + time.Duration(i)*500*time.Millisecond
			// Two Sybil identities sharing a waveform, two distinct ones.
			wave := -60 - float64(i%9)
			for _, id := range []vanet.NodeID{101, 102} {
				if err := mon.Observe(id, at, wave); err != nil {
					t.Fatal(err)
				}
			}
			if err := mon.Observe(1, at, -55-float64((i*3)%11)); err != nil {
				t.Fatal(err)
			}
			if err := mon.Observe(2, at, -72-float64((i*5)%13)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := mon.Detect(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	src := stateTestMonitor(t)
	feedState(t, src)
	st := src.State()
	if len(st.Identities) == 0 || len(st.Confirm) == 0 {
		t.Fatalf("state is trivial: %d identities, %d confirm entries", len(st.Identities), len(st.Confirm))
	}

	dst := stateTestMonitor(t)
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if got := dst.State(); !reflect.DeepEqual(got, st) {
		t.Errorf("restored state differs:\n got %+v\nwant %+v", got, st)
	}
	if got, want := dst.Now(), src.Now(); got != want {
		t.Errorf("Now = %v, want %v", got, want)
	}
	if got, want := dst.Confirmed(), src.Confirmed(); !reflect.DeepEqual(got, want) {
		t.Errorf("Confirmed = %v, want %v", got, want)
	}

	// The restored monitor must behave identically from here on: same
	// traffic, same verdicts.
	feedMore := func(m *Monitor) map[vanet.NodeID]bool {
		base := m.Now()
		for i := 0; i < 40; i++ {
			at := base + time.Duration(i+1)*500*time.Millisecond
			wave := -60 - float64(i%9)
			for _, id := range []vanet.NodeID{101, 102} {
				if err := m.Observe(id, at, wave); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Observe(1, at, -55-float64((i*3)%11)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Detect()
		if err != nil {
			t.Fatal(err)
		}
		return res.Confirmed
	}
	if got, want := feedMore(dst), feedMore(src); !reflect.DeepEqual(got, want) {
		t.Errorf("post-restore round diverged: got %v, want %v", got, want)
	}
}

func TestStateCaptureIsDeepCopy(t *testing.T) {
	mon := stateTestMonitor(t)
	feedState(t, mon)
	st := mon.State()
	before := st.Identities[0].Samples[0]
	// Keep mutating the monitor; the captured state must not move.
	if err := mon.Observe(st.Identities[0].ID, mon.Now()+time.Second, -64); err != nil {
		t.Fatal(err)
	}
	if st.Identities[0].Samples[0] != before {
		t.Error("captured samples alias the live series")
	}
}

func TestRestoreStateRejectsNonFresh(t *testing.T) {
	mon := stateTestMonitor(t)
	feedState(t, mon)
	if err := mon.RestoreState(&MonitorState{}); err == nil {
		t.Error("RestoreState on a used monitor succeeded")
	}
}

func TestRestoreStateRejectsBadSamples(t *testing.T) {
	cases := []struct {
		name    string
		samples []timeseries.Sample
	}{
		{"non-finite", []timeseries.Sample{{T: 0, RSSI: math.NaN()}}},
		{"regressing", []timeseries.Sample{{T: time.Second, RSSI: -60}, {T: 0, RSSI: -61}}},
	}
	for _, tc := range cases {
		st := &MonitorState{Identities: []IdentityState{{ID: 1, Samples: tc.samples}}}
		if err := stateTestMonitor(t).RestoreState(st); err == nil {
			t.Errorf("%s: RestoreState succeeded", tc.name)
		}
	}
}

func TestRestoreStateTrimsWideConfirmHistory(t *testing.T) {
	mon := stateTestMonitor(t) // window 3
	st := &MonitorState{Confirm: []ConfirmState{{ID: 7, Flags: []bool{true, true, false, false, false}}}}
	if err := mon.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// Only the newest 3 flags survive: {false,false,false} → not confirmed.
	if mon.Confirmed()[7] {
		t.Error("identity confirmed from flags beyond the window")
	}
}
