package core

import (
	"errors"

	"voiceprint/internal/vanet"
)

// EstimateDensity is Equation 9: den = N_normal / (2 * Dist_max), with
// Dist_max in meters and the result in vehicles/km. heardLegit is the
// number of distinct legitimate identities heard in the estimation period
// ("one vehicle can only use the total number of received nodes in the
// first estimation since it cannot recognize the legitimate ones at the
// beginning").
func EstimateDensity(heardLegit int, maxRangeM float64) (float64, error) {
	if maxRangeM <= 0 {
		return 0, errors.New("core: max transmission range must be positive")
	}
	if heardLegit < 0 {
		return 0, errors.New("core: negative heard count")
	}
	return float64(heardLegit) / (2 * maxRangeM / 1000), nil
}

// DensityEstimator tracks detection outcomes across rounds so later
// estimates exclude identities already confirmed as Sybil, per the
// paper's note on the first estimation.
type DensityEstimator struct {
	maxRangeM  float64
	knownSybil map[vanet.NodeID]bool
}

// NewDensityEstimator builds an estimator for a radio with the given
// maximum transmission range in meters.
func NewDensityEstimator(maxRangeM float64) (*DensityEstimator, error) {
	if nonFinite(maxRangeM) || maxRangeM <= 0 {
		return nil, errors.New("core: max transmission range must be positive and finite")
	}
	return &DensityEstimator{
		maxRangeM:  maxRangeM,
		knownSybil: make(map[vanet.NodeID]bool),
	}, nil
}

// Estimate returns the Equation 9 density for the identities heard this
// period, discounting identities already known to be Sybil.
func (e *DensityEstimator) Estimate(heard []vanet.NodeID) float64 {
	legit := 0
	for _, id := range heard {
		if !e.knownSybil[id] {
			legit++
		}
	}
	den, err := EstimateDensity(legit, e.maxRangeM)
	if err != nil {
		// Unreachable: maxRangeM validated at construction, legit >= 0.
		return 0
	}
	return den
}

// Record feeds a round's confirmed suspects back into the estimator.
func (e *DensityEstimator) Record(suspects map[vanet.NodeID]bool) {
	for id, v := range suspects {
		if v {
			e.knownSybil[id] = true
		}
	}
}
