package core

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"voiceprint/internal/vanet"
)

// TestVoiceprintSignalBitIdentity: the Signal adapter must reproduce the
// monolithic Detector.Detect verdict exactly — same suspects, same pair
// evidence, same considered set — over the same windowed series. The
// whole fusion redesign rests on this equivalence.
func TestVoiceprintSignalBitIdentity(t *testing.T) {
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := NewVoiceprintSignal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Name() != SignalName {
		t.Fatalf("signal name = %q, want %q", sig.Name(), SignalName)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		series := sybilCluster(rng, 5)
		want, err := det.Detect(series, 20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sig.Analyze(&SignalInput{Series: series, Density: 20})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Suspects, want.Suspects) {
			t.Errorf("trial %d: suspects %v != detector %v", trial, got.Suspects, want.Suspects)
		}
		if !reflect.DeepEqual(got.Pairs, want.Pairs) {
			t.Errorf("trial %d: pair evidence diverged", trial)
		}
		if !reflect.DeepEqual(got.Tested, want.Considered) {
			t.Errorf("trial %d: tested %v != considered %v", trial, got.Tested, want.Considered)
		}
		if got.Skipped != want.Skipped {
			t.Errorf("trial %d: skipped %d != %d", trial, got.Skipped, want.Skipped)
		}
		for id, s := range got.Scores {
			if !want.Suspects[id] {
				t.Errorf("trial %d: score for unflagged %d", trial, id)
			}
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Errorf("trial %d: non-finite score for %d", trial, id)
			}
		}
	}
}

// stubSignal is a minimal Signal for option-validation and fusion-path
// tests.
type stubSignal struct {
	name    string
	flag    vanet.NodeID
	valErr  error
	analyze func(*SignalInput) (*SignalResult, error)
}

func (s stubSignal) Name() string { return s.name }

func (s stubSignal) Validate() error { return s.valErr }

func (s stubSignal) Analyze(in *SignalInput) (*SignalResult, error) {
	if s.analyze != nil {
		return s.analyze(in)
	}
	return &SignalResult{
		Suspects: map[vanet.NodeID]bool{s.flag: true},
		Scores:   map[vanet.NodeID]float64{s.flag: 1},
		Tested:   []vanet.NodeID{s.flag},
	}, nil
}

func TestFusionOptionsValidate(t *testing.T) {
	ok := stubSignal{name: "stub"}
	cases := []struct {
		name string
		opts FusionOptions
		want string // substring of the error; "" means valid
	}{
		{"zero value", FusionOptions{}, ""},
		{"enabled no extras", FusionOptions{Enabled: true}, ""},
		{"enabled with signal", FusionOptions{Enabled: true, Signals: []Signal{ok}}, ""},
		{"disabled with signals", FusionOptions{Signals: []Signal{ok}}, "Enabled is false"},
		{"nil signal", FusionOptions{Enabled: true, Signals: []Signal{nil}}, "is nil"},
		{"empty name", FusionOptions{Enabled: true, Signals: []Signal{stubSignal{}}}, "empty name"},
		{"reserved name", FusionOptions{Enabled: true, Signals: []Signal{stubSignal{name: SignalName}}}, "duplicate"},
		{"duplicate name", FusionOptions{Enabled: true, Signals: []Signal{ok, ok}}, "duplicate"},
		{"failing validate", FusionOptions{Enabled: true,
			Signals: []Signal{stubSignal{name: "bad", valErr: ErrNonFiniteRSSI}}}, "bad"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// A bad fusion configuration must fail at monitor construction, not
	// at round time.
	cfg := DefaultConfig(testBoundary())
	if _, err := NewMonitor(MonitorConfig{Detector: cfg,
		Fusion: FusionOptions{Enabled: true, Signals: []Signal{nil}}}); err == nil {
		t.Error("NewMonitor accepted a nil fusion signal")
	}
}

// TestMonitorFusionAttribution: a fusion round must union the extra
// signal's flags into Suspects, extend Considered with flagged
// identities (the grading denominator requirement), and attribute every
// flag in Result.Signals — while a fusion-off monitor leaves Signals nil.
func TestMonitorFusionAttribution(t *testing.T) {
	cfg := DefaultConfig(testBoundary())
	cfg.MinMedianRSSIDBm = 0
	extra := stubSignal{name: "stub", flag: 55}
	m, err := NewMonitor(MonitorConfig{
		Detector:         cfg,
		ReorderTolerance: time.Hour,
		Fusion:           FusionOptions{Enabled: true, Signals: []Signal{extra}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	series := sybilCluster(rng, 4)
	for id, s := range series {
		for i := 0; i < s.Len(); i++ {
			smp := s.At(i)
			if err := m.ObserveWithClaim(id, smp.T, smp.RSSI, 10, 5); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := m.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspects[55] {
		t.Fatalf("stub-flagged identity missing from fused suspects: %v", res.Suspects)
	}
	found := false
	for _, id := range res.Considered {
		if id == 55 {
			found = true
		}
	}
	if !found {
		t.Errorf("flagged identity 55 not accounted in Considered %v", res.Considered)
	}
	attr := res.Signals[55]
	if attr == nil || attr["stub"] != 1 {
		t.Errorf("attribution for 55 = %v, want stub score 1", attr)
	}

	// Fusion off: same stream, no Signals map, no stub flag.
	off, err := NewMonitor(MonitorConfig{Detector: cfg, ReorderTolerance: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(9))
	series = sybilCluster(rng, 4)
	for id, s := range series {
		for i := 0; i < s.Len(); i++ {
			smp := s.At(i)
			if err := off.Observe(id, smp.T, smp.RSSI); err != nil {
				t.Fatal(err)
			}
		}
	}
	plain, err := off.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Signals != nil {
		t.Errorf("fusion-off round carries Signals: %v", plain.Signals)
	}
	if plain.Suspects[55] {
		t.Error("fusion-off round flagged the stub identity")
	}
}
