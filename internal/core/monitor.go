package core

import (
	"errors"
	"fmt"
	"time"

	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// Monitor is the online face of the detector: a vehicle feeds it every
// received beacon as it arrives and asks for a verdict once per detection
// period. It owns the rolling observation window, the Equation 9 density
// estimator and the multi-period Confirmer, so embedding Voiceprint in an
// OBU's receive path is three calls: Observe, Detect, Confirmed.
type Monitor struct {
	det       *Detector
	estimator *DensityEstimator
	confirmer *Confirmer

	window  time.Duration
	series  map[vanet.NodeID]*timeseries.Series
	lastObs map[vanet.NodeID]time.Duration
	now     time.Duration
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Detector is the detection configuration (boundary, normalizations).
	Detector Config
	// MaxRangeM is Dist_max for density estimation; zero means 400 m.
	MaxRangeM float64
	// ConfirmWindow and ConfirmNeed set the multi-period confirmation
	// rule; zero means 3-of-5 is NOT applied (confirm on first flag:
	// window 1, need 1).
	ConfirmWindow, ConfirmNeed int
	// EvictAfter drops identities not heard for this long; zero means
	// twice the detector's observation time.
	EvictAfter time.Duration
}

// NewMonitor builds a Monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	det, err := New(cfg.Detector)
	if err != nil {
		return nil, err
	}
	if cfg.MaxRangeM == 0 {
		cfg.MaxRangeM = 400
	}
	est, err := NewDensityEstimator(cfg.MaxRangeM)
	if err != nil {
		return nil, err
	}
	if cfg.ConfirmWindow == 0 {
		cfg.ConfirmWindow = 1
		cfg.ConfirmNeed = 1
	}
	conf, err := NewConfirmer(cfg.ConfirmWindow, cfg.ConfirmNeed)
	if err != nil {
		return nil, err
	}
	window := det.Config().ObservationTime
	if window == 0 {
		window = 20 * time.Second
	}
	return &Monitor{
		det:       det,
		estimator: est,
		confirmer: conf,
		window:    window,
		series:    make(map[vanet.NodeID]*timeseries.Series),
		lastObs:   make(map[vanet.NodeID]time.Duration),
	}, nil
}

// ErrTimeBackwards is returned when observations regress in time.
var ErrTimeBackwards = errors.New("core: observation time went backwards")

// Observe feeds one received beacon. Observations must be non-decreasing
// in time across all identities.
func (m *Monitor) Observe(id vanet.NodeID, t time.Duration, rssi float64) error {
	if t < m.now {
		return fmt.Errorf("%w: %v after %v", ErrTimeBackwards, t, m.now)
	}
	m.now = t
	s := m.series[id]
	if s == nil {
		s = timeseries.New(64)
		m.series[id] = s
	}
	if err := s.Append(t, rssi); err != nil {
		return err
	}
	m.lastObs[id] = t
	return nil
}

// Detect runs one detection round over the trailing observation window,
// updates the confirmer, and returns the round result. Call it once per
// detection period.
func (m *Monitor) Detect() (*Result, error) {
	from := m.now - m.window
	if from < 0 {
		from = 0
	}
	m.evict()
	input := make(map[vanet.NodeID]*timeseries.Series, len(m.series))
	heard := make([]vanet.NodeID, 0, len(m.series))
	for id, s := range m.series {
		w := s.Window(from, m.now+1)
		if w.Len() == 0 {
			continue
		}
		input[id] = w
		heard = append(heard, id)
	}
	density := m.estimator.Estimate(heard)
	res, err := m.det.Detect(input, density)
	if err != nil {
		return nil, err
	}
	m.estimator.Record(res.Suspects)
	m.confirmer.Update(res.Considered, res.Suspects)
	return res, nil
}

// Confirmed returns the identities currently confirmed as Sybil under the
// multi-period rule.
func (m *Monitor) Confirmed() map[vanet.NodeID]bool {
	return m.confirmer.Update(nil, nil)
}

// Tracked returns how many identities the monitor currently buffers.
func (m *Monitor) Tracked() int { return len(m.series) }

// evict drops identities that have gone silent, bounding memory on long
// drives past thousands of vehicles.
func (m *Monitor) evict() {
	evictAfter := 2 * m.window
	for id, last := range m.lastObs {
		if m.now-last > evictAfter {
			delete(m.series, id)
			delete(m.lastObs, id)
			m.confirmer.Forget(id)
		}
	}
	// Rebuild buffers so evicted history does not pin backing arrays; the
	// kept series also shrink to the relevant window.
	from := m.now - evictAfter
	if from < 0 {
		return
	}
	for id, s := range m.series {
		m.series[id] = s.Window(from, m.now+1)
	}
}
