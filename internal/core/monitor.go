package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// Monitor is the online face of the detector: a vehicle feeds it every
// received beacon as it arrives and asks for a verdict once per detection
// period. It owns the rolling observation window, the Equation 9 density
// estimator and the multi-period Confirmer, so embedding Voiceprint in an
// OBU's receive path is three calls: Observe, Detect, Confirmed.
//
// A Monitor is safe for concurrent use: the streaming service feeds
// observations from ingest goroutines while a scheduler runs detection
// rounds on a worker pool. Calls serialize on an internal mutex; the
// heavy pairwise comparison inside Detect still parallelizes internally
// via Config.Workers.
type Monitor struct {
	mu        sync.Mutex
	det       *Detector
	estimator *DensityEstimator
	confirmer *Confirmer

	window     time.Duration
	evictAfter time.Duration
	series     map[vanet.NodeID]*timeseries.Series
	lastObs    map[vanet.NodeID]time.Duration
	now        time.Duration
	evicted    uint64
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Detector is the detection configuration (boundary, normalizations).
	Detector Config
	// MaxRangeM is Dist_max for density estimation; zero means 400 m.
	MaxRangeM float64
	// ConfirmWindow and ConfirmNeed set the multi-period confirmation
	// rule; zero means 3-of-5 is NOT applied (confirm on first flag:
	// window 1, need 1).
	ConfirmWindow, ConfirmNeed int
	// EvictAfter drops identities not heard for this long; zero means
	// twice the detector's observation time.
	EvictAfter time.Duration
}

// NewMonitor builds a Monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	det, err := New(cfg.Detector)
	if err != nil {
		return nil, err
	}
	if cfg.MaxRangeM == 0 {
		cfg.MaxRangeM = 400
	}
	est, err := NewDensityEstimator(cfg.MaxRangeM)
	if err != nil {
		return nil, err
	}
	if cfg.ConfirmWindow == 0 {
		cfg.ConfirmWindow = 1
		cfg.ConfirmNeed = 1
	}
	conf, err := NewConfirmer(cfg.ConfirmWindow, cfg.ConfirmNeed)
	if err != nil {
		return nil, err
	}
	window := det.Config().ObservationTime
	if window == 0 {
		window = 20 * time.Second
	}
	if cfg.EvictAfter < 0 {
		return nil, errors.New("core: EvictAfter must be non-negative")
	}
	evictAfter := cfg.EvictAfter
	if evictAfter == 0 {
		evictAfter = 2 * window
	}
	return &Monitor{
		det:        det,
		estimator:  est,
		confirmer:  conf,
		window:     window,
		evictAfter: evictAfter,
		series:     make(map[vanet.NodeID]*timeseries.Series),
		lastObs:    make(map[vanet.NodeID]time.Duration),
	}, nil
}

// ErrTimeBackwards is returned when observations regress in time.
var ErrTimeBackwards = errors.New("core: observation time went backwards")

// Observe feeds one received beacon. Observations must be non-decreasing
// in time across all identities.
func (m *Monitor) Observe(id vanet.NodeID, t time.Duration, rssi float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t < m.now {
		return fmt.Errorf("%w: %v after %v", ErrTimeBackwards, t, m.now)
	}
	m.now = t
	s := m.series[id]
	if s == nil {
		s = timeseries.New(64)
		m.series[id] = s
	}
	if err := s.Append(t, rssi); err != nil {
		return err
	}
	m.lastObs[id] = t
	return nil
}

// ObserveClamped feeds one beacon, tolerating bounded reordering: a
// timestamp up to tolerance behind the newest observation is clamped
// forward to it (the sample still lands in the window, order within the
// series is what DTW absorbs anyway); anything older is rejected with
// ErrTimeBackwards. Network ingest paths use this instead of Observe so a
// slightly late UDP-ish delivery does not poison the stream.
func (m *Monitor) ObserveClamped(id vanet.NodeID, t time.Duration, rssi float64, tolerance time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t < m.now {
		if m.now-t > tolerance {
			return fmt.Errorf("%w: %v after %v", ErrTimeBackwards, t, m.now)
		}
		t = m.now
	}
	m.now = t
	s := m.series[id]
	if s == nil {
		s = timeseries.New(64)
		m.series[id] = s
	}
	if err := s.Append(t, rssi); err != nil {
		return err
	}
	m.lastObs[id] = t
	return nil
}

// Detect runs one detection round over the trailing observation window,
// updates the confirmer, and returns the round result. Call it once per
// detection period.
func (m *Monitor) Detect() (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.detectAtLocked(m.now)
}

// DetectAt runs a detection round with the observation window ending at
// now (advancing the monitor clock to it if ahead). Schedulers use it to
// fire rounds at exact period boundaries even when no beacon landed on
// the boundary instant.
func (m *Monitor) DetectAt(now time.Duration) (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now > m.now {
		m.now = now
	}
	return m.detectAtLocked(m.now)
}

func (m *Monitor) detectAtLocked(now time.Duration) (*Result, error) {
	from := now - m.window
	if from < 0 {
		from = 0
	}
	m.evictLocked()
	input := make(map[vanet.NodeID]*timeseries.Series, len(m.series))
	heard := make([]vanet.NodeID, 0, len(m.series))
	for id, s := range m.series {
		w := s.Window(from, now+1)
		if w.Len() == 0 {
			continue
		}
		input[id] = w
		heard = append(heard, id)
	}
	density := m.estimator.Estimate(heard)
	res, err := m.det.Detect(input, density)
	if err != nil {
		return nil, err
	}
	m.estimator.Record(res.Suspects)
	m.confirmer.Update(res.Considered, res.Suspects)
	return res, nil
}

// Confirmed returns the identities currently confirmed as Sybil under the
// multi-period rule. It is a read-only snapshot: calling it between
// detection periods does not advance the K-of-N window.
func (m *Monitor) Confirmed() map[vanet.NodeID]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.confirmer.Confirmed()
}

// Tracked returns how many identities the monitor currently buffers.
func (m *Monitor) Tracked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.series)
}

// Now returns the monitor clock: the latest observation (or DetectAt)
// time seen so far.
func (m *Monitor) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Evicted returns the cumulative count of identities evicted for silence.
func (m *Monitor) Evicted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// evictLocked drops identities that have gone silent, bounding memory on
// long drives past thousands of vehicles. Callers hold m.mu.
func (m *Monitor) evictLocked() {
	for id, last := range m.lastObs {
		if m.now-last > m.evictAfter {
			delete(m.series, id)
			delete(m.lastObs, id)
			m.confirmer.Forget(id)
			m.evicted++
		}
	}
	// Rebuild buffers so evicted history does not pin backing arrays; the
	// kept series also shrink to the relevant horizon (never narrower
	// than the observation window, even with an aggressive EvictAfter).
	keep := m.evictAfter
	if m.window > keep {
		keep = m.window
	}
	from := m.now - keep
	if from < 0 {
		return
	}
	for id, s := range m.series {
		m.series[id] = s.Window(from, m.now+1)
	}
}
