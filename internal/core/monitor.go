package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"time"

	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// Monitor is the online face of the detector: a vehicle feeds it every
// received beacon as it arrives and asks for a verdict once per detection
// period. It owns the rolling observation window, the Equation 9 density
// estimator and the multi-period Confirmer, so embedding Voiceprint in an
// OBU's receive path is three calls: Observe, Detect, Confirmed.
//
// A Monitor is safe for concurrent use: the streaming service feeds
// observations from ingest goroutines while a scheduler runs detection
// rounds on a worker pool. Calls serialize on an internal mutex; the
// heavy pairwise comparison inside Detect still parallelizes internally
// via Config.Workers.
type Monitor struct {
	mu        sync.Mutex
	det       *Detector
	estimator *DensityEstimator
	confirmer *Confirmer
	// obsv mirrors the detector config's Observer so the window-
	// extraction stage (which runs here, before the detector) reports
	// through the same hook.
	obsv Observer

	window     time.Duration
	evictAfter time.Duration
	tolerance  time.Duration
	series     map[vanet.NodeID]*timeseries.Series // voiceprintvet:guardedby mu
	lastObs    map[vanet.NodeID]time.Duration      // voiceprintvet:guardedby mu
	now        time.Duration                       // voiceprintvet:guardedby mu
	evicted    uint64                              // voiceprintvet:guardedby mu

	// version counts accepted observations and evictions; together with a
	// round's window end it fingerprints the detector input, so a round
	// whose fingerprint matches the previous one can reuse its Result.
	version uint64 // voiceprintvet:guardedby mu
	// obsVer records, per identity, the version of its last accepted
	// observation. Version is monotone across evictions, so an identity
	// that is evicted and reappears can never repeat an old value —
	// which makes obsVer the per-identity half of the dirty-pair cache's
	// fingerprints (see pairMemo).
	obsVer map[vanet.NodeID]uint64 // voiceprintvet:guardedby mu
	// memo is the dirty-pair cache: exact pairwise raw distances keyed by
	// the two identities' window-view fingerprints, reused for pairs
	// provably unchanged since the previous round. nil when disabled.
	memo *pairMemo // voiceprintvet:guardedby mu
	// input, views and heard are reused across rounds: input is the map
	// handed to the detector, views holds one zero-copy window header per
	// tracked identity, heard collects the ids seen this window.
	input map[vanet.NodeID]*timeseries.Series // voiceprintvet:guardedby mu
	views map[vanet.NodeID]*timeseries.Series // voiceprintvet:guardedby mu
	heard []vanet.NodeID                      // voiceprintvet:guardedby mu
	// Unchanged-round cache: the previous round's result and fingerprint.
	lastRes *Result       // voiceprintvet:guardedby mu
	lastVer uint64        // voiceprintvet:guardedby mu
	lastEnd time.Duration // voiceprintvet:guardedby mu
	cached  uint64        // voiceprintvet:guardedby mu

	// Fusion state: the configured extra signals and, when fusion is
	// enabled, the per-identity claimed-position samples (appended by
	// ObserveWithClaim, trimmed with the series). claims is nil when
	// fusion is off — claimed positions are then ignored entirely, which
	// keeps plain rounds bit-identical.
	fusion FusionOptions
	claims map[vanet.NodeID][]ClaimSample // voiceprintvet:guardedby mu
	// claimsIn is the reusable window slice handed to signals.
	claimsIn map[vanet.NodeID][]ClaimSample // voiceprintvet:guardedby mu
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Detector is the detection configuration (boundary, normalizations).
	Detector Config
	// MaxRangeM is Dist_max for density estimation; zero means 400 m.
	MaxRangeM float64
	// ConfirmWindow and ConfirmNeed set the multi-period confirmation
	// rule; zero means 3-of-5 is NOT applied (confirm on first flag:
	// window 1, need 1).
	ConfirmWindow, ConfirmNeed int
	// EvictAfter drops identities not heard for this long; zero means
	// twice the detector's observation time.
	EvictAfter time.Duration
	// ReorderTolerance is how far back in time an observation may arrive
	// relative to the newest observation and still be accepted by
	// Observe (clamped forward to the monitor clock); anything older is
	// rejected with ErrTimeBackwards. Zero or negative keeps strict
	// monotonicity — the offline/batch default. Network ingest paths set
	// a few beacon intervals so slightly late deliveries do not poison
	// the stream.
	ReorderTolerance time.Duration
	// DisablePairCache turns off the dirty-pair cache, forcing every
	// round to recompute all pairwise distances. Results are byte-
	// identical either way (the cache stores only exact values and never
	// influences pruning); the knob exists for memory-constrained
	// deployments and for the equivalence tests that prove that claim.
	DisablePairCache bool
	// Fusion is the multi-signal fusion option block (see FusionOptions).
	// The zero value keeps the plain single-signal pipeline.
	Fusion FusionOptions
}

// NewMonitor builds a Monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	det, err := New(cfg.Detector)
	if err != nil {
		return nil, err
	}
	if zeroSentinel(cfg.MaxRangeM) {
		cfg.MaxRangeM = 400
	}
	est, err := NewDensityEstimator(cfg.MaxRangeM)
	if err != nil {
		return nil, err
	}
	if cfg.ConfirmWindow == 0 {
		cfg.ConfirmWindow = 1
		cfg.ConfirmNeed = 1
	}
	conf, err := NewConfirmer(cfg.ConfirmWindow, cfg.ConfirmNeed)
	if err != nil {
		return nil, err
	}
	window := det.Config().ObservationTime
	if window == 0 {
		window = 20 * time.Second
	}
	if cfg.EvictAfter < 0 {
		return nil, errors.New("core: EvictAfter must be non-negative")
	}
	evictAfter := cfg.EvictAfter
	if evictAfter == 0 {
		evictAfter = 2 * window
	}
	tolerance := cfg.ReorderTolerance
	if tolerance < 0 {
		tolerance = 0
	}
	if err := cfg.Fusion.Validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		det:        det,
		estimator:  est,
		confirmer:  conf,
		obsv:       det.Config().Observer,
		window:     window,
		evictAfter: evictAfter,
		tolerance:  tolerance,
		series:     make(map[vanet.NodeID]*timeseries.Series),
		lastObs:    make(map[vanet.NodeID]time.Duration),
		obsVer:     make(map[vanet.NodeID]uint64),
		fusion:     cfg.Fusion,
	}
	if m.fusion.Enabled {
		m.claims = make(map[vanet.NodeID][]ClaimSample)
	}
	if !cfg.DisablePairCache {
		m.memo = newPairMemo()
	}
	return m, nil
}

// ErrTimeBackwards is returned when observations regress in time.
var ErrTimeBackwards = errors.New("core: observation time went backwards")

// ErrNonFiniteRSSI is returned when an observation carries a NaN or Inf
// RSSI. A non-finite sample admitted into a series poisons every mean,
// Z-score and DTW distance computed over it for as long as it stays in
// the window, so it is rejected at ingest instead.
var ErrNonFiniteRSSI = errors.New("core: non-finite RSSI")

// Observe feeds one received beacon, carrying a finite RSSI. Timestamps
// must be non-decreasing across all identities up to the configured
// MonitorConfig.ReorderTolerance: a timestamp at most that far behind
// the newest observation is clamped forward to it (the sample still
// lands in the window; order within a series is what DTW absorbs
// anyway), anything older is rejected with ErrTimeBackwards. With the
// zero tolerance — the default — ordering is strictly monotone.
//
// Observe is the single ingest entry point; ObserveClamped remains only
// as a deprecated per-call-tolerance variant.
func (m *Monitor) Observe(id vanet.NodeID, t time.Duration, rssi float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observeLocked(id, t, rssi, m.tolerance, nil)
}

// ErrNonFinitePosition is returned when a claimed position carries a NaN
// or Inf coordinate — rejected at ingest for the same reason as
// non-finite RSSI.
var ErrNonFinitePosition = errors.New("core: non-finite claimed position")

// ObserveWithClaim feeds one beacon that also carried a claimed sender
// position, expressed in the receiver's local frame (claimed minus
// receiver position, meters). The RSSI sample is ingested exactly as
// Observe does; the claim is additionally retained for fusion signals
// when MonitorConfig.Fusion is enabled, and ignored otherwise — so a
// fusion-off monitor fed positioned beacons behaves bit-identically to
// one fed plain beacons.
func (m *Monitor) ObserveWithClaim(id vanet.NodeID, t time.Duration, rssi float64, x, y float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := ClaimSample{T: t, X: x, Y: y, RSSI: rssi}
	if !finiteClaim(c) {
		return fmt.Errorf("%w: (%v, %v) at %v", ErrNonFinitePosition, x, y, t)
	}
	return m.observeLocked(id, t, rssi, m.tolerance, &c)
}

// ObserveClamped feeds one beacon with an explicit reorder tolerance
// overriding the configured one.
//
// Deprecated: set MonitorConfig.ReorderTolerance and call Observe; the
// two-method split predates the config knob and survives only for
// compatibility.
func (m *Monitor) ObserveClamped(id vanet.NodeID, t time.Duration, rssi float64, tolerance time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observeLocked(id, t, rssi, tolerance, nil)
}

// observeLocked implements ingest under m.mu; tolerance bounds how far
// behind the monitor clock a timestamp may lag and still be clamped
// forward. claim, when non-nil and fusion is enabled, is retained for
// the round's fusion signals (its T is clamped along with the sample's).
//
// voiceprintvet:holds mu
func (m *Monitor) observeLocked(id vanet.NodeID, t time.Duration, rssi float64, tolerance time.Duration, claim *ClaimSample) error {
	if math.IsNaN(rssi) || math.IsInf(rssi, 0) {
		return fmt.Errorf("%w: %v at %v", ErrNonFiniteRSSI, rssi, t)
	}
	if t < m.now {
		if m.now-t > tolerance {
			return fmt.Errorf("%w: %v after %v", ErrTimeBackwards, t, m.now)
		}
		t = m.now
	}
	m.now = t
	s := m.series[id]
	if s == nil {
		s = timeseries.New(64)
		m.series[id] = s
	}
	if err := s.Append(t, rssi); err != nil {
		return err
	}
	m.lastObs[id] = t
	m.version++
	m.obsVer[id] = m.version
	if claim != nil && m.claims != nil {
		claim.T = t
		m.claims[id] = append(m.claims[id], *claim)
	}
	return nil
}

// Detect runs one detection round over the trailing observation window,
// updates the confirmer, and returns the round result. Call it once per
// detection period.
func (m *Monitor) Detect() (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.detectAtLocked(m.now)
}

// DetectAt runs a detection round with the observation window ending at
// the requested boundary at (inclusive), advancing the monitor clock to
// it when ahead. Schedulers use it to fire rounds at exact period
// boundaries even when no beacon landed on the boundary instant. When
// observations have already streamed past the boundary the round still
// evaluates the requested window — it does not drift forward to the
// newest observation (the pre-fix behaviour); Result.WindowEnd reports
// the boundary actually used. Eviction is still governed by the monotone
// monitor clock, so a long-past boundary sees only retained history.
func (m *Monitor) DetectAt(at time.Duration) (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if at > m.now {
		m.now = at
	}
	return m.detectAtLocked(at)
}

// detectAtLocked runs one round with the window ending at end. Results
// are shared with the unchanged-round cache, so callers must treat the
// returned Result as read-only.
//
// voiceprintvet:holds mu
func (m *Monitor) detectAtLocked(end time.Duration) (*Result, error) {
	m.evictLocked()
	if m.lastRes != nil && m.version == m.lastVer && end == m.lastEnd {
		// Unchanged round: no observation or eviction since the previous
		// round, same window end, hence bit-identical detector input. Only
		// the confirmation history must still advance — the K-of-N rule
		// counts rounds, not observations — and the density estimator's
		// Record is idempotent for an unchanged suspect set.
		m.cached++
		cp := *m.lastRes
		m.estimator.Record(cp.Suspects)
		cp.Confirmed = m.confirmer.Update(cp.Considered, cp.Suspects)
		cp.Cached = true
		// The compare-phase tallies describe work the original round did;
		// this round did none, and schedulers sum the counters per round.
		cp.PairsCompared, cp.PairsPrunedLB, cp.PairsReusedDirty = 0, 0, 0
		return &cp, nil
	}
	// Window extraction is the round's monitor-side stage; like the
	// detector's stages it is timed only when an observer is installed
	// (cached rounds above never reach it — they do no window work).
	var windowStart time.Time
	if m.obsv != nil {
		windowStart = time.Now()
	}
	from := end - m.window
	if from < 0 {
		from = 0
	}
	if m.input == nil {
		m.input = make(map[vanet.NodeID]*timeseries.Series, len(m.series))
		m.views = make(map[vanet.NodeID]*timeseries.Series, len(m.series))
	}
	clear(m.input)
	m.heard = m.heard[:0]
	for id, s := range m.series {
		v := m.views[id]
		if v == nil {
			v = &timeseries.Series{}
			m.views[id] = v
		}
		s.WindowViewInto(from, end+1, v)
		if v.Len() == 0 {
			continue
		}
		m.input[id] = v
		m.heard = append(m.heard, id)
	}
	// The range above walks a map; sort so everything derived from the
	// heard list is independent of map iteration order.
	slices.Sort(m.heard)
	density := m.estimator.Estimate(m.heard)
	if m.obsv != nil {
		m.obsv.ObserveStage(StageWindow, time.Since(windowStart))
	}
	if m.memo != nil {
		m.memo.beginRound(m.heard, m.input, m.obsVer)
	}
	res, err := m.det.detect(m.input, density, m.memo)
	if err != nil {
		return nil, err
	}
	res.WindowEnd = end
	if m.fusion.Enabled {
		if err := m.fuseLocked(res, from, end); err != nil {
			return nil, err
		}
	}
	m.estimator.Record(res.Suspects)
	res.Confirmed = m.confirmer.Update(res.Considered, res.Suspects)
	m.lastRes = res
	m.lastVer = m.version
	m.lastEnd = end
	return res, nil
}

// fuseLocked runs the configured fusion signals over the round's window
// and folds their verdicts into res: suspect sets union, and flagged
// identities extend Considered (so every flagged identity is accounted
// in the round that flagged it). Tested-but-clean identities do NOT
// extend Considered — a fusion signal's negative verdict is weaker than
// its positive one, and folding them in would dilute the round's
// grading denominator relative to the plain pipeline instead of
// strictly adding to it. Per-identity scores land in res.Signals. The
// voiceprint round itself has already run; its pair evidence is in
// res.Pairs.
//
// voiceprintvet:holds mu
func (m *Monitor) fuseLocked(res *Result, from, end time.Duration) error {
	if m.claimsIn == nil {
		m.claimsIn = make(map[vanet.NodeID][]ClaimSample)
	}
	clear(m.claimsIn)
	for id, cs := range m.claims {
		// Claims are appended under the monotone monitor clock, so each
		// slice is sorted by T; binary-search the window bounds.
		lo := sort.Search(len(cs), func(i int) bool { return cs[i].T >= from })
		hi := sort.Search(len(cs), func(i int) bool { return cs[i].T > end })
		if lo < hi {
			m.claimsIn[id] = cs[lo:hi:hi]
		}
	}
	in := &SignalInput{
		WindowStart: from,
		WindowEnd:   end,
		Density:     res.Density,
		Series:      m.input,
		Claims:      m.claimsIn,
	}
	signals := make(map[vanet.NodeID]map[string]float64)
	attach := func(id vanet.NodeID, name string, score float64) {
		per := signals[id]
		if per == nil {
			per = make(map[string]float64, 2)
			signals[id] = per
		}
		per[name] = score
	}
	vpScores := VoiceprintScores(res.Pairs, nil)
	for id := range res.Suspects {
		if s, ok := vpScores[id]; ok {
			attach(id, SignalName, s)
		}
	}
	considered := make(map[vanet.NodeID]bool, len(res.Considered))
	for _, id := range res.Considered {
		considered[id] = true
	}
	grew := false
	for _, sig := range m.fusion.Signals {
		sr, err := sig.Analyze(in)
		if err != nil {
			return fmt.Errorf("core: fusion signal %q: %w", sig.Name(), err)
		}
		if sr == nil {
			continue
		}
		res.Skipped += sr.Skipped
		name := sig.Name()
		for id, flagged := range sr.Suspects {
			if !flagged {
				continue
			}
			res.Suspects[id] = true
			attach(id, name, sr.Scores[id])
			if !considered[id] {
				considered[id] = true
				grew = true
			}
		}
	}
	if grew {
		ids := make([]vanet.NodeID, 0, len(considered))
		for id := range considered {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		res.Considered = ids
	}
	res.Signals = signals
	return nil
}

// Confirmed returns the identities currently confirmed as Sybil under the
// multi-period rule. It is a read-only snapshot: calling it between
// detection periods does not advance the K-of-N window.
func (m *Monitor) Confirmed() map[vanet.NodeID]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.confirmer.Confirmed()
}

// Tracked returns how many identities the monitor currently buffers.
func (m *Monitor) Tracked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.series)
}

// Now returns the monitor clock: the latest observation (or DetectAt)
// time seen so far.
func (m *Monitor) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Evicted returns the cumulative count of identities evicted for silence.
func (m *Monitor) Evicted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// CachedRounds returns how many detection rounds were answered from the
// unchanged-round cache (same observations, same window end as the
// previous round).
func (m *Monitor) CachedRounds() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cached
}

// evictLocked drops identities that have gone silent, bounding memory on
// long drives past thousands of vehicles. Callers hold m.mu.
//
// voiceprintvet:holds mu
func (m *Monitor) evictLocked() {
	for id, last := range m.lastObs {
		if m.now-last > m.evictAfter {
			delete(m.series, id)
			delete(m.lastObs, id)
			delete(m.views, id)
			delete(m.obsVer, id)
			delete(m.claims, id)
			if m.memo != nil {
				m.memo.forget(id)
			}
			m.confirmer.Forget(id)
			m.evicted++
			m.version++
		}
	}
	// Trim retired history in place (amortized O(1), no allocation) so
	// evicted prefixes do not pin memory forever; the kept series never
	// shrink below the observation window, even with an aggressive
	// EvictAfter.
	keep := m.evictAfter
	if m.window > keep {
		keep = m.window
	}
	from := m.now - keep
	if from < 0 {
		return
	}
	for _, s := range m.series {
		s.TrimBefore(from)
	}
	for id, cs := range m.claims {
		lo := sort.Search(len(cs), func(i int) bool { return cs[i].T >= from })
		if lo == 0 {
			continue
		}
		// Shift in place so the retained tail does not pin the trimmed
		// prefix through the shared backing array.
		n := copy(cs, cs[lo:])
		m.claims[id] = cs[:n]
	}
}
