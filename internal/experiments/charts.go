package experiments

import (
	"voiceprint/internal/plot"
)

// Chart builders: the SVG companions of the text tables, written by
// `cmd/experiments -svg`.

// Chart renders the Figure 10 scatter with the trained boundary line.
func (r *Fig10Result) Chart() *plot.Chart {
	var sybil, normal []plot.Point
	for _, p := range r.Points {
		pt := plot.Point{X: p.Density, Y: p.Normalized}
		if p.SybilPair {
			sybil = append(sybil, pt)
		} else {
			normal = append(normal, pt)
		}
	}
	// Boundary endpoints across the density span.
	minDen, maxDen := 0.0, 0.0
	for i, p := range r.Points {
		if i == 0 || p.Density < minDen {
			minDen = p.Density
		}
		if i == 0 || p.Density > maxDen {
			maxDen = p.Density
		}
	}
	boundary := []plot.Point{
		{X: minDen, Y: r.Boundary.K*minDen + r.Boundary.B},
		{X: maxDen, Y: r.Boundary.K*maxDen + r.Boundary.B},
	}
	return &plot.Chart{
		Title:  "Figure 10 — decision boundary on the (density, DTW distance) plane",
		XLabel: "traffic density (vhls/km)",
		YLabel: "normalized DTW distance",
		Series: []plot.Series{
			{Name: "normal pair", Color: "#1f77b4", Points: normal},
			{Name: "Sybil pair", Color: "#d62728", Points: sybil},
			{Name: "boundary", Color: "#2ca02c", Points: boundary, Line: true},
		},
	}
}

// Charts renders the Figure 11 sweep as two charts: detection rate and
// false positive rate vs density.
func (r *Fig11Result) Charts() (dr, fpr *plot.Chart) {
	var vpDR, vpFPR, cpDR, cpFPR []plot.Point
	for _, row := range r.Rows {
		vpDR = append(vpDR, plot.Point{X: row.Density, Y: row.VoiceprintDR})
		vpFPR = append(vpFPR, plot.Point{X: row.Density, Y: row.VoiceprintFPR})
		cpDR = append(cpDR, plot.Point{X: row.Density, Y: row.CPVSADDR})
		cpFPR = append(cpFPR, plot.Point{X: row.Density, Y: row.CPVSADFPR})
	}
	suffix := "a (fixed parameters)"
	if r.ModelChange {
		suffix = "b (parameters switched every 30 s)"
	}
	dr = &plot.Chart{
		Title:  "Figure 11" + suffix + " — detection rate",
		XLabel: "traffic density (vhls/km)",
		YLabel: "detection rate",
		YMin:   0, YMax: 1.05,
		XMin: r.Rows[0].Density * 0.9, XMax: r.Rows[len(r.Rows)-1].Density * 1.05,
		Series: []plot.Series{
			{Name: "Voiceprint", Color: "#d62728", Points: vpDR, Line: true},
			{Name: "CPVSAD", Color: "#1f77b4", Points: cpDR, Line: true},
		},
	}
	fpr = &plot.Chart{
		Title:  "Figure 11" + suffix + " — false positive rate",
		XLabel: "traffic density (vhls/km)",
		YLabel: "false positive rate",
		YMin:   0, YMax: 1.05,
		XMin: r.Rows[0].Density * 0.9, XMax: r.Rows[len(r.Rows)-1].Density * 1.05,
		Series: []plot.Series{
			{Name: "Voiceprint", Color: "#d62728", Points: vpFPR, Line: true},
			{Name: "CPVSAD", Color: "#1f77b4", Points: cpFPR, Line: true},
		},
	}
	return dr, fpr
}
