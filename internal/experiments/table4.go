package experiments

import (
	"fmt"
	"math/rand"

	"voiceprint/internal/radio"
)

// Table4Config parameterizes the Table IV fit reproduction: a synthetic
// measurement campaign is sampled from each environment's published
// parameters and the dual-slope fitter must recover them (the DESIGN.md
// substitution for the paper's real drive tests).
type Table4Config struct {
	Seed int64
	// SamplesPerArea; zero means 4000.
	SamplesPerArea int
}

// Table4Row is one environment's published vs recovered parameters.
type Table4Row struct {
	Area      string
	Published radio.DualSlopeParams
	Fitted    radio.DualSlopeParams
	SSE       float64
}

// Table4Result is the fit comparison across environments.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 runs the campaign and fits per area.
func Table4(cfg Table4Config) (*Table4Result, error) {
	if cfg.SamplesPerArea == 0 {
		cfg.SamplesPerArea = 4000
	}
	areas := []struct {
		name   string
		params radio.DualSlopeParams
	}{
		{"campus", radio.CampusParams},
		{"rural", radio.RuralParams},
		{"urban", radio.UrbanParams},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Table4Result{}
	for _, a := range areas {
		truth := radio.DualSlope{Params: a.params}
		ms, err := radio.SampleCampaign(truth, cfg.SamplesPerArea, 1, 1000, rng)
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", a.name, err)
		}
		fit, err := radio.FitDualSlope(ms, a.params.RefDistance)
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", a.name, err)
		}
		res.Rows = append(res.Rows, Table4Row{
			Area:      a.name,
			Published: a.params,
			Fitted:    fit.Params,
			SSE:       fit.SSE,
		})
	}
	return res, nil
}

// Render formats published vs fitted parameters side by side.
func (r *Table4Result) Render() string {
	t := &Table{
		Title: "Table IV — dual-slope model parameters: published (paper) vs re-fitted (synthetic campaign)",
		Columns: []string{"area", "d_c pub", "d_c fit", "g1 pub", "g1 fit",
			"g2 pub", "g2 fit", "s1 pub", "s1 fit", "s2 pub", "s2 fit"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Area,
			fmt.Sprintf("%.0f", row.Published.CriticalDistance),
			fmt.Sprintf("%.0f", row.Fitted.CriticalDistance),
			fmt.Sprintf("%.2f", row.Published.Gamma1),
			fmt.Sprintf("%.2f", row.Fitted.Gamma1),
			fmt.Sprintf("%.2f", row.Published.Gamma2),
			fmt.Sprintf("%.2f", row.Fitted.Gamma2),
			fmt.Sprintf("%.1f", row.Published.Sigma1),
			fmt.Sprintf("%.1f", row.Fitted.Sigma1),
			fmt.Sprintf("%.1f", row.Published.Sigma2),
			fmt.Sprintf("%.1f", row.Fitted.Sigma2))
	}
	return t.String()
}
