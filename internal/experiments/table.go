// Package experiments regenerates every table and figure of the paper's
// measurement and evaluation sections (the per-experiment index lives in
// DESIGN.md). Each experiment is a pure function from a configuration to
// a typed result with a text renderer; the CLI (cmd/experiments) and the
// bench harness (bench_test.go) are thin wrappers around them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a minimal aligned-text table for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
