package experiments

import (
	"math/rand"
	"time"

	"voiceprint/internal/dtw"
	"voiceprint/internal/timeseries"
)

// FastDTWRow is one radius's accuracy/time trade-off.
type FastDTWRow struct {
	Radius        int
	MeanRelError  float64
	MeanTime      time.Duration
	ExactMeanTime time.Duration
}

// FastDTWResult quantifies the Section IV-B claim that FastDTW reaches
// near-exact accuracy in linear time ("achieves O(N) time complexity
// while has only 1% loss of accuracy").
type FastDTWResult struct {
	SeriesLen int
	Trials    int
	Rows      []FastDTWRow
}

// FastDTWAccuracy sweeps the radius on RSSI-like random-walk pairs.
func FastDTWAccuracy(seed int64, seriesLen, trials int) (*FastDTWResult, error) {
	if seriesLen == 0 {
		seriesLen = 200
	}
	if trials == 0 {
		trials = 30
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ x, y []float64 }
	pairs := make([]pair, trials)
	for i := range pairs {
		pairs[i] = pair{
			x: timeseries.GenRandomWalk(seriesLen, -75, 1.5, -95, -40, 100*time.Millisecond, rng).Values(),
			y: timeseries.GenRandomWalk(seriesLen, -75, 1.5, -95, -40, 100*time.Millisecond, rng).Values(),
		}
	}
	exact := make([]float64, trials)
	exactStart := time.Now()
	for i, p := range pairs {
		d, err := dtw.Distance(p.x, p.y, nil)
		if err != nil {
			return nil, err
		}
		exact[i] = d
	}
	exactMean := time.Since(exactStart) / time.Duration(trials)

	res := &FastDTWResult{SeriesLen: seriesLen, Trials: trials}
	for _, radius := range []int{1, 2, 4, 8, 16} {
		var errSum float64
		start := time.Now()
		for i, p := range pairs {
			d, err := dtw.FastDistance(p.x, p.y, radius, nil)
			if err != nil {
				return nil, err
			}
			if exact[i] > 0 {
				errSum += (d - exact[i]) / exact[i]
			}
		}
		res.Rows = append(res.Rows, FastDTWRow{
			Radius:        radius,
			MeanRelError:  errSum / float64(trials),
			MeanTime:      time.Since(start) / time.Duration(trials),
			ExactMeanTime: exactMean,
		})
	}
	return res, nil
}

// Render formats the trade-off table.
func (r *FastDTWResult) Render() string {
	t := &Table{
		Title:   "Section IV-B — FastDTW accuracy/time vs exact DTW (independent random walks; worst case)",
		Columns: []string{"radius", "mean rel. error", "mean time", "exact time"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Radius, row.MeanRelError, row.MeanTime.String(), row.ExactMeanTime.String())
	}
	return t.String()
}
