package experiments

import (
	"fmt"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
)

// Fig11Config parameterizes the Figure 11 comparison sweep: Voiceprint vs
// CPVSAD across traffic densities, without (11a) and with (11b)
// propagation-model change.
type Fig11Config struct {
	// Densities to sweep; nil means {10, 20, ..., 100}.
	Densities []float64
	// SeedsPerDensity; zero means 3.
	SeedsPerDensity int
	// Seed is the base seed.
	Seed int64
	// Duration per run; zero means 100 s.
	Duration time.Duration
	// ModelChange selects Figure 11b.
	ModelChange bool
	// Boundary is the trained Voiceprint decision boundary (from Fig10).
	Boundary lda.Boundary
	// AbsoluteCap is the trained raw-distance cap (from Fig10); zero
	// disables.
	AbsoluteCap float64
	// MaxObservers caps recording receivers per run.
	MaxObservers int
	// WitnessRange bounds CPVSAD witness eligibility; zero means 500 m.
	WitnessRange float64
}

// Fig11Row is one density's outcome for both methods.
type Fig11Row struct {
	Density                     float64
	VoiceprintDR, VoiceprintFPR float64
	CPVSADDR, CPVSADFPR         float64
}

// Fig11Result is the full sweep.
type Fig11Result struct {
	ModelChange bool
	Rows        []Fig11Row
}

// Fig11 runs the comparison sweep.
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	if len(cfg.Densities) == 0 {
		cfg.Densities = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	if cfg.SeedsPerDensity == 0 {
		cfg.SeedsPerDensity = 3
	}
	if cfg.WitnessRange == 0 {
		cfg.WitnessRange = 500
	}
	detCfg := core.DefaultConfig(cfg.Boundary)
	detCfg.AbsoluteRawCap = cfg.AbsoluteCap
	det, err := core.New(detCfg)
	if err != nil {
		return nil, err
	}
	verifier, err := NewCPVSAD()
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{ModelChange: cfg.ModelChange}
	seed := cfg.Seed
	for _, den := range cfg.Densities {
		var vpDR, vpFPR, cpDR, cpFPR float64
		var vpN, cpN int
		for s := 0; s < cfg.SeedsPerDensity; s++ {
			seed++
			run, err := RunHighway(SimParams{
				DensityPerKm: den,
				Seed:         seed,
				Duration:     cfg.Duration,
				ModelChange:  cfg.ModelChange,
				MaxObservers: cfg.MaxObservers,
			})
			if err != nil {
				return nil, fmt.Errorf("fig11: density %v: %w", den, err)
			}
			vpAgg, _, err := VoiceprintRounds(run, det, 0)
			if err != nil {
				return nil, fmt.Errorf("fig11: voiceprint at density %v: %w", den, err)
			}
			if dr, err := vpAgg.MeanDR(); err == nil {
				fpr, _ := vpAgg.MeanFPR()
				vpDR += dr
				vpFPR += fpr
				vpN++
			}
			cpAgg, err := CPVSADRounds(run, verifier, 0, cfg.WitnessRange)
			if err != nil {
				return nil, fmt.Errorf("fig11: cpvsad at density %v: %w", den, err)
			}
			if dr, err := cpAgg.MeanDR(); err == nil {
				fpr, _ := cpAgg.MeanFPR()
				cpDR += dr
				cpFPR += fpr
				cpN++
			}
		}
		row := Fig11Row{Density: den}
		if vpN > 0 {
			row.VoiceprintDR = vpDR / float64(vpN)
			row.VoiceprintFPR = vpFPR / float64(vpN)
		}
		if cpN > 0 {
			row.CPVSADDR = cpDR / float64(cpN)
			row.CPVSADFPR = cpFPR / float64(cpN)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the sweep like the paper's Figure 11 series.
func (r *Fig11Result) Render() string {
	label := "Figure 11a — DR/FPR vs density, fixed propagation parameters"
	if r.ModelChange {
		label = "Figure 11b — DR/FPR vs density, parameters switched every 30 s"
	}
	t := &Table{
		Title: label,
		Columns: []string{"density (vhls/km)", "Voiceprint DR", "Voiceprint FPR",
			"CPVSAD DR", "CPVSAD FPR"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Density, row.VoiceprintDR, row.VoiceprintFPR,
			row.CPVSADDR, row.CPVSADFPR)
	}
	return t.String()
}
