package experiments

import (
	"fmt"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
)

// The ablations quantify the design decisions DESIGN.md calls out. They
// are ours, not the paper's, but each knob corresponds to a paper claim:
// the classifier choice (Section IV-C lists alternatives), the Z-score
// normalization (Assumption 3's countermeasure), the observation time
// (Section VII's future-work discussion), and the warp constraint.

// ClassifierRow is one trainer's boundary and holdout quality.
type ClassifierRow struct {
	Name     string
	Boundary lda.Boundary
	Holdout  float64
	Err      string
}

// ClassifierResult compares boundary trainers on the same harvest.
type ClassifierResult struct {
	Rows []ClassifierRow
}

// ClassifierAblation trains every implemented classifier on one harvest
// and scores holdout accuracy on a second.
func ClassifierAblation(train, holdout []PairSample) (*ClassifierResult, error) {
	trainPts := NormalizedPoints(train)
	holdPts := NormalizedPoints(holdout)
	type trainer struct {
		name string
		fn   func([]lda.Point) (lda.Boundary, error)
	}
	trainers := []trainer{
		{"bucketed threshold fit (production)", func(p []lda.Point) (lda.Boundary, error) {
			return lda.TrainLine(p, 8)
		}},
		{"LDA (paper)", lda.Train},
		{"logistic regression", func(p []lda.Point) (lda.Boundary, error) {
			return lda.TrainLogistic(p, 500, 0.5)
		}},
		{"perceptron", func(p []lda.Point) (lda.Boundary, error) {
			return lda.TrainPerceptron(p, 50)
		}},
		{"linear SVM", func(p []lda.Point) (lda.Boundary, error) {
			return lda.TrainLinearSVM(p, 500, 0.01)
		}},
	}
	res := &ClassifierResult{}
	for _, tr := range trainers {
		row := ClassifierRow{Name: tr.name}
		b, err := tr.fn(trainPts)
		if err != nil {
			row.Err = err.Error()
		} else {
			row.Boundary = b
			row.Holdout = lda.Accuracy(b, holdPts)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the classifier comparison.
func (r *ClassifierResult) Render() string {
	t := &Table{
		Title:   "Ablation A1 — boundary trainer comparison (holdout accuracy on pair labels)",
		Columns: []string{"trainer", "k", "b", "holdout acc"},
	}
	for _, row := range r.Rows {
		if row.Err != "" {
			t.AddRow(row.Name, "-", "-", row.Err)
			continue
		}
		t.AddRow(row.Name,
			fmt.Sprintf("%.6f", row.Boundary.K),
			fmt.Sprintf("%.5f", row.Boundary.B),
			row.Holdout)
	}
	return t.String()
}

// DetectorAblationRow is one detector variant's sweep outcome.
type DetectorAblationRow struct {
	Name    string
	Density float64
	DR, FPR float64
}

// DetectorAblationResult sweeps detector variants over densities.
type DetectorAblationResult struct {
	Title string
	Rows  []DetectorAblationRow
}

// DetectorVariant names a detector configuration mutation.
type DetectorVariant struct {
	Name   string
	Mutate func(*core.Config)
}

// DetectorAblation runs each variant over the given densities with one
// seed per density, aggregating DR/FPR.
func DetectorAblation(title string, variants []DetectorVariant, densities []float64, boundary lda.Boundary, cap float64, seed int64, dur time.Duration) (*DetectorAblationResult, error) {
	res := &DetectorAblationResult{Title: title}
	for _, v := range variants {
		cfg := core.DefaultConfig(boundary)
		cfg.AbsoluteRawCap = cap
		v.Mutate(&cfg)
		det, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.Name, err)
		}
		for i, den := range densities {
			run, err := RunHighway(SimParams{
				DensityPerKm: den,
				Seed:         seed + int64(i),
				Duration:     dur,
			})
			if err != nil {
				return nil, err
			}
			agg, _, err := VoiceprintRounds(run, det, cfg.ObservationTime)
			if err != nil {
				return nil, err
			}
			row := DetectorAblationRow{Name: v.Name, Density: den}
			if dr, err := agg.MeanDR(); err == nil {
				row.DR = dr
			}
			if fpr, err := agg.MeanFPR(); err == nil {
				row.FPR = fpr
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render formats the ablation sweep.
func (r *DetectorAblationResult) Render() string {
	t := &Table{
		Title:   r.Title,
		Columns: []string{"variant", "density", "DR", "FPR"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Density, row.DR, row.FPR)
	}
	return t.String()
}

// StandardDetectorVariants returns the ablation suite: Z-score off
// (Assumption 3), length normalization off, unconstrained FastDTW, and
// observation-time variations.
func StandardDetectorVariants() []DetectorVariant {
	return []DetectorVariant{
		{"production", func(*core.Config) {}},
		{"no Z-score (Eq 7 off)", func(c *core.Config) { c.DisableZScore = true }},
		{"no length normalization", func(c *core.Config) { c.DisableLengthNormalization = true }},
		{"unconstrained FastDTW", func(c *core.Config) { c.BandRadius = -1 }},
		{"band radius 5", func(c *core.Config) { c.BandRadius = 5 }},
		{"band radius 50", func(c *core.Config) { c.BandRadius = 50 }},
		{"observation 10 s", func(c *core.Config) { c.ObservationTime = 10 * time.Second }},
		{"observation 40 s", func(c *core.Config) { c.ObservationTime = 40 * time.Second }},
	}
}
