package experiments

import (
	"fmt"
	"sort"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
	"voiceprint/internal/trace"
	"voiceprint/internal/vanet"
)

// Fig6And7Config parameterizes the Section III Scenario 3 reconstruction:
// the four-vehicle convoy (one attacker with two Sybil identities) whose
// RSSI series, recorded by the leading and trailing normal nodes,
// motivate Observation 3.
type Fig6And7Config struct {
	Seed int64
	// Duration; zero means 3 minutes.
	Duration time.Duration
}

// SeriesSummary describes one recorded series.
type SeriesSummary struct {
	Sender  vanet.NodeID
	N       int
	MeanDBm float64
	StdDBm  float64
}

// PairRow is one pairwise similarity (per-sample DTW distance after
// Z-score normalization) with its ground-truth label.
type PairRow struct {
	A, B      vanet.NodeID
	Distance  float64
	SybilPair bool
}

// ReceiverView is what one normal node recorded (Figure 6 is the leading
// node's view, Figure 7 the trailing node's).
type ReceiverView struct {
	Receiver vanet.NodeID
	Series   []SeriesSummary
	Pairs    []PairRow
}

// Fig6And7Result holds both receivers' views.
type Fig6And7Result struct {
	Views []ReceiverView
}

// Fig6And7 reconstructs Scenario 3 in the campus channel and verifies
// Observation 3: the Sybil-cluster series are mutually closest.
func Fig6And7(cfg Fig6And7Config) (*Fig6And7Result, error) {
	dur := cfg.Duration
	if dur == 0 {
		dur = 3 * time.Minute
	}
	area := trace.CampusArea()
	area.Duration = dur + time.Minute
	eng, err := trace.NewFieldTestEngine(area, cfg.Seed)
	if err != nil {
		return nil, err
	}
	eng.Run(dur)
	truth := eng.Truth()

	// The comparison uses the detector's own pipeline with a disabled
	// boundary (only distances are wanted).
	detCfg := core.DefaultConfig(lda.Boundary{K: 0, B: -1})
	detCfg.MinMedianRSSIDBm = 0 // node 3 hears near-floor series on purpose
	det, err := core.New(detCfg)
	if err != nil {
		return nil, err
	}

	res := &Fig6And7Result{}
	// Node index 3 = leading node 4 (the paper's "normal node 1" view,
	// Figure 6); node index 2 = trailing node 3 (Figure 7).
	for _, obsIdx := range []int{3, 2} {
		log := eng.Logs()[obsIdx]
		if log == nil {
			return nil, fmt.Errorf("fig6_7: observer %d has no log", obsIdx)
		}
		view := ReceiverView{Receiver: log.Receiver}
		ids := make([]vanet.NodeID, 0, len(log.PerIdentity))
		for id := range log.PerIdentity {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			s := log.PerIdentity[id].Series(0, dur)
			view.Series = append(view.Series, SeriesSummary{
				Sender:  id,
				N:       s.Len(),
				MeanDBm: s.Mean(),
				StdDBm:  s.StdDev(),
			})
		}
		round, err := detectWindow(det, log, 0, dur, 4)
		if err != nil {
			return nil, err
		}
		for _, p := range round.Pairs {
			view.Pairs = append(view.Pairs, PairRow{
				A: p.A, B: p.B,
				Distance:  p.Raw,
				SybilPair: truth.SybilPair(p.A, p.B),
			})
		}
		sort.Slice(view.Pairs, func(i, j int) bool {
			return view.Pairs[i].Distance < view.Pairs[j].Distance
		})
		res.Views = append(res.Views, view)
	}
	return res, nil
}

// Render formats both views.
func (r *Fig6And7Result) Render() string {
	out := ""
	labels := []string{"Figure 6 — recorded by the leading normal node",
		"Figure 7 — recorded by the trailing normal node"}
	for i, view := range r.Views {
		label := fmt.Sprintf("receiver %d", view.Receiver)
		if i < len(labels) {
			label = labels[i]
		}
		t := &Table{
			Title:   label + " (series)",
			Columns: []string{"sender", "n", "mean dBm", "std dB"},
		}
		for _, s := range view.Series {
			t.AddRow(s.Sender, s.N, s.MeanDBm, s.StdDBm)
		}
		p := &Table{
			Title:   label + " (pairwise per-sample DTW distances, ascending)",
			Columns: []string{"pair", "distance", "sybil pair"},
		}
		for _, pr := range view.Pairs {
			p.AddRow(fmt.Sprintf("(%d,%d)", pr.A, pr.B), pr.Distance, pr.SybilPair)
		}
		out += t.String() + "\n" + p.String() + "\n"
	}
	return out
}
