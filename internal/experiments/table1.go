package experiments

// Table1 reproduces the paper's Table I, the qualitative comparison of
// RSSI-based Sybil detection methods. It is documentation-as-code: the
// repo implements the bottom row (Voiceprint) in internal/core and the
// Yu/Xiao row's mechanism as the CPVSAD baseline in internal/baseline;
// the radio propagation models named in column RPM are all implemented in
// internal/radio.
func Table1() *Table {
	t := &Table{
		Title: "Table I — comparisons of RSSI-based detection methods " +
			"(RPM: radio propagation model; C/D: centralized/decentralized; " +
			"C/I: cooperative/independent; SoI: support of infrastructure)",
		Columns: []string{"method", "RPM", "C/D", "C/I", "SoI", "mobility"},
	}
	t.AddRow("Demirbas [14]", "free space", "D", "C", "no", "static")
	t.AddRow("Wang [15]", "Rayleigh fading", "D", "C", "no", "static")
	t.AddRow("Lv [16]", "two-ray ground", "D", "C", "no", "static")
	t.AddRow("Bouassida [17]", "Friis free space", "D", "I", "no", "low mobility")
	t.AddRow("Chen [18]", "shadowing", "C", "-", "yes", "static")
	t.AddRow("Xiao [20]", "shadowing", "D", "C", "yes", "high mobility")
	t.AddRow("Yu [19]", "shadowing", "D", "C", "yes", "high mobility")
	t.AddRow("Voiceprint", "model-free", "D", "I", "no", "high mobility")
	return t
}
