package experiments

import (
	"math"
	"math/rand"
	"sort"
	"time"
	"voiceprint/internal/channel"

	"voiceprint/internal/baseline"
	"voiceprint/internal/core"
	"voiceprint/internal/lda"
	"voiceprint/internal/metrics"
	"voiceprint/internal/radio"
	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// SimParams configure one highway simulation run (Section V, Table V).
type SimParams struct {
	// DensityPerKm is the vehicle density (10-100 in the paper's sweep).
	DensityPerKm float64
	// Seed drives every random choice of the run.
	Seed int64
	// Duration of the run; zero means 100 s (Table V).
	Duration time.Duration
	// ModelChange enables the Figure 11b channel: the dual-slope
	// parameters switch every 30 s (Table V "model change period").
	ModelChange bool
	// MaxObservers caps the recording receivers; zero derives a density-
	// proportional sample (see DESIGN.md substitution).
	MaxObservers int
	// BeaconRateHz overrides the CCH 10 Hz beacon rate; zero means 10.
	// The paper's Section VII proposes moving samples to the Service
	// Channel to beacon faster and shrink the observation time.
	BeaconRateHz float64
}

// baseSimModel is the Figure 11a channel: the Cheng et al. dual-slope
// highway model with both sigmas forced to 3.9 dB, matching Section V-C
// ("the standard deviation sigma1 and sigma2 are both set to be 3.9 dB").
func baseSimModel() radio.DualSlope {
	p := radio.HighwayParams
	p.Sigma1 = 3.9
	p.Sigma2 = 3.9
	return radio.DualSlope{Params: p}
}

// switchedSimModels is the Figure 11b channel set: parameters drift to a
// different environment every period.
func switchedSimModels() []radio.Model {
	mk := func(p radio.DualSlopeParams) radio.Model {
		p.Sigma1 = 3.9
		p.Sigma2 = 3.9
		return radio.DualSlope{Params: p}
	}
	return []radio.Model{
		mk(radio.HighwayParams),
		mk(radio.UrbanParams),
		mk(radio.CampusParams),
		mk(radio.RuralParams),
	}
}

// SimRun is a completed highway simulation with everything detection
// needs.
type SimRun struct {
	Engine   *vanet.Engine
	Truth    vanet.Truth
	Params   SimParams
	Duration time.Duration
}

// RunHighway builds and runs one Table V highway simulation.
func RunHighway(p SimParams) (*SimRun, error) {
	return runHighwayWith(p, nil)
}

// runHighwayWith is RunHighway with an optional hook that mutates the
// node population (e.g. arming attackers) before the engine starts.
func runHighwayWith(p SimParams, arm func([]*vanet.Node)) (*SimRun, error) {
	if p.Duration == 0 {
		p.Duration = 100 * time.Second
	}
	rng := rand.New(rand.NewSource(p.Seed))
	scenario := vanet.DefaultScenario(p.DensityPerKm)
	// Physical radios transmit at the DSRC default; only Sybil identities
	// spoof their power. This keeps the CPVSAD comparison meaningful (it
	// assumes a known TX power), matching the paper's Figure 11 setup; the
	// heterogeneous-power ablation exercises Assumption 3 separately.
	scenario.TxPowerMinDBm = 20
	scenario.TxPowerMaxDBm = 20
	nodes, err := vanet.BuildHighwayNodes(scenario, rng)
	if err != nil {
		return nil, err
	}
	// Re-randomize Sybil identity powers to the paper's 17-23 dBm band.
	for _, n := range nodes {
		if !n.Malicious {
			continue
		}
		for i := 1; i < len(n.Identities); i++ {
			n.Identities[i].TxPowerDBm = 17 + 6*rng.Float64()
		}
	}
	maxObs := p.MaxObservers
	if maxObs == 0 {
		// Density-proportional receiver sample: enough for averaging and
		// for CPVSAD witness scaling, bounded for memory and runtime.
		maxObs = 4 + int(p.DensityPerKm/3)
		if maxObs > 20 {
			maxObs = 20
		}
	}
	observers := vanet.SampleObservers(nodes, maxObs, rng)
	if arm != nil {
		arm(nodes)
	}

	var ch radio.Channel
	if p.ModelChange {
		sw, err := radio.NewSwitcher(30*time.Second, switchedSimModels()...)
		if err != nil {
			return nil, err
		}
		ch = sw
	} else {
		ch = radio.Static{Model: baseSimModel()}
	}
	// The paper's NS-2 radio reaches most of the 2 km highway (free-space-
	// derived ranges at 20 dBm exceed 800 m), so essentially every receiver
	// has the attacker population in view; match that here. The min-max
	// normalization of Equation 8 relies on it: the pair distance scale is
	// anchored by genuinely dissimilar far pairs.
	chParams := channel.DefaultParams()
	chParams.MaxReceptionRange = 1000
	chParams.CarrierSenseRange = 1000
	step := time.Duration(0) // engine default: 100 ms (10 Hz)
	if p.BeaconRateHz > 0 {
		chParams.BeaconRateHz = p.BeaconRateHz
		step = time.Duration(float64(time.Second) / p.BeaconRateHz)
	}
	eng, err := vanet.NewEngine(vanet.Config{
		Radio:     ch,
		Channel:   chParams,
		Seed:      p.Seed + 1,
		Step:      step,
		Observers: observers,
	}, nodes)
	if err != nil {
		return nil, err
	}
	eng.Run(p.Duration)
	return &SimRun{Engine: eng, Truth: eng.Truth(), Params: p, Duration: p.Duration}, nil
}

// MaxRangeM is Dist_max in Equation 9: the assumed maximum transmission
// range for density estimation (the paper's Section VI-B example uses
// 500 m; we match the channel's MaxReceptionRange).
const MaxRangeM = 1000

// PairSample is one labelled pairwise comparison from a detection round:
// the Figure 10 training harvest carries both the Equation 8 normalized
// distance and the raw per-sample distance (used to train the absolute
// cap).
type PairSample struct {
	Density    float64
	Normalized float64
	Raw        float64
	SybilPair  bool
}

// NormalizedPoints projects samples onto the (density, normalized
// distance) plane for boundary training.
func NormalizedPoints(samples []PairSample) []lda.Point {
	out := make([]lda.Point, len(samples))
	for i, s := range samples {
		out[i] = lda.Point{Density: s.Density, Distance: s.Normalized, SybilPair: s.SybilPair}
	}
	return out
}

// RawPoints projects samples onto the (density, raw distance) plane for
// absolute-cap training.
func RawPoints(samples []PairSample) []lda.Point {
	out := make([]lda.Point, len(samples))
	for i, s := range samples {
		out[i] = lda.Point{Density: s.Density, Distance: s.Raw, SybilPair: s.SybilPair}
	}
	return out
}

// VoiceprintRounds runs the Voiceprint detector over every observer and
// detection period of a run and aggregates Equations 12-13. It also
// returns all pairwise comparisons labelled with ground truth (the
// Figure 10 training harvest).
func VoiceprintRounds(run *SimRun, det *core.Detector, period time.Duration) (*metrics.Aggregator, []PairSample, error) {
	if period == 0 {
		period = 20 * time.Second
	}
	agg := &metrics.Aggregator{}
	var points []PairSample
	for _, oIdx := range sortedLogKeys(run.Engine.Logs()) {
		log := run.Engine.Logs()[oIdx]
		est, err := core.NewDensityEstimator(MaxRangeM)
		if err != nil {
			return nil, nil, err
		}
		for from := time.Duration(0); from+period <= run.Duration; from += period {
			to := from + period
			heard := log.HeardIDs(from, to)
			if len(heard) == 0 {
				continue
			}
			density := est.Estimate(heard)
			res, err := detectWindow(det, log, from, to, density)
			if err != nil {
				return nil, nil, err
			}
			est.Record(res.Suspects)
			// Score over the identities the detector actually tracked
			// (enough samples to compare); fringe identities with a
			// handful of beacons are nobody's responsibility this round.
			counts, err := metrics.Score(res.Considered, res.Suspects, run.Truth)
			if err != nil {
				return nil, nil, err
			}
			agg.Add(counts)
			for _, pair := range res.Pairs {
				points = append(points, PairSample{
					Density:    density,
					Normalized: pair.Normalized,
					Raw:        pair.Raw,
					SybilPair:  run.Truth.SybilPair(pair.A, pair.B),
				})
			}
		}
	}
	return agg, points, nil
}

// detectWindow slices one observer's log into series and runs a round.
func detectWindow(det *core.Detector, log *vanet.ReceptionLog, from, to time.Duration, density float64) (*core.Result, error) {
	series := make(map[vanet.NodeID]*timeseries.Series, len(log.PerIdentity))
	for id, l := range log.PerIdentity {
		s := l.Series(from, to)
		if s.Len() > 0 {
			series[id] = s
		}
	}
	return det.Detect(series, density)
}

// CPVSADRounds runs the CPVSAD baseline over every observer and period:
// each observer acts as verifier, pooling witness reports from the other
// observers within witnessRange, and aggregates Equations 12-13.
func CPVSADRounds(run *SimRun, verifier *baseline.Detector, period time.Duration, witnessRange float64) (*metrics.Aggregator, error) {
	if period == 0 {
		period = 10 * time.Second // the paper gives CPVSAD 10 s windows
	}
	agg := &metrics.Aggregator{}
	logs := run.Engine.Logs()
	idxs := sortedLogKeys(logs)
	nodes := run.Engine.Nodes()
	for _, vIdx := range idxs {
		vLog := logs[vIdx]
		for from := time.Duration(0); from+period <= run.Duration; from += period {
			to := from + period
			heard := vLog.HeardIDs(from, to)
			if len(heard) == 0 {
				continue
			}
			own := reportsFromLog(verifier, vLog, from, to)
			var wit []map[vanet.NodeID]*baseline.WitnessReport
			for _, wIdx := range idxs {
				if wIdx == vIdx {
					continue
				}
				if distanceBetween(nodes[vIdx], nodes[wIdx]) <= witnessRange {
					wit = append(wit, reportsFromLog(verifier, logs[wIdx], from, to))
				}
			}
			res, err := verifier.Detect(own, wit)
			if err != nil {
				return nil, err
			}
			// The verifier can only sentence identities it heard itself.
			heardSet := make(map[vanet.NodeID]bool, len(heard))
			for _, id := range heard {
				heardSet[id] = true
			}
			suspects := make(map[vanet.NodeID]bool)
			for id := range res.Suspects {
				if heardSet[id] {
					suspects[id] = true
				}
			}
			counts, err := metrics.Score(heard, suspects, run.Truth)
			if err != nil {
				return nil, err
			}
			agg.Add(counts)
		}
	}
	return agg, nil
}

// reportsFromLog builds per-identity witness reports from a log window,
// thinning beacons to ~1 Hz: consecutive RSSI samples share the slowly
// varying shadowing term, and the z-test needs approximately independent
// deviations.
func reportsFromLog(verifier *baseline.Detector, log *vanet.ReceptionLog, from, to time.Duration) map[vanet.NodeID]*baseline.WitnessReport {
	out := make(map[vanet.NodeID]*baseline.WitnessReport, len(log.PerIdentity))
	for id, l := range log.PerIdentity {
		window := l.Window(from, to)
		if len(window) == 0 {
			continue
		}
		var thinned []vanet.Obs
		last := time.Duration(-time.Hour)
		for _, o := range window {
			if o.T-last >= time.Second {
				thinned = append(thinned, o)
				last = o.T
			}
		}
		out[id] = verifier.ReportFromLog(thinned)
	}
	return out
}

// distanceBetween measures current physical distance between two nodes.
func distanceBetween(a, b *vanet.Node) float64 {
	pa := a.Mover.Position()
	pb := b.Mover.Position()
	dx := pa.X - pb.X
	dy := pa.Y - pb.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// NewCPVSAD builds the baseline verifier for the Figure 11 comparison:
// it assumes the *initial* simulation channel with sigma 3.9 dB — correct
// in Figure 11a, stale under the Figure 11b parameter drift.
func NewCPVSAD() (*baseline.Detector, error) {
	return baseline.New(baseline.Config{
		Model:           baseSimModel(),
		SigmaDB:         3.9,
		Alpha:           0.05,
		ObservationTime: 10 * time.Second,
	})
}

func sortedLogKeys(logs map[int]*vanet.ReceptionLog) []int {
	idxs := make([]int, 0, len(logs))
	for idx := range logs {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs
}
