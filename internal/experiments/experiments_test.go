package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"voiceprint/internal/lda"
)

// The experiment tests run reduced configurations and assert the *shape*
// properties the paper reports, not absolute numbers (see EXPERIMENTS.md).

func TestFig9(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 5 {
		t.Errorf("distance = %v, want 5 (exact evaluation of Eqs 3-6)", res.Distance)
	}
	if err := res.Path.Validate(len(res.X), len(res.Y)); err != nil {
		t.Errorf("invalid path: %v", err)
	}
	if !strings.Contains(res.Render(), "DTW distance") {
		t.Error("render missing content")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(Fig5Config{
		Seed:               5,
		StationaryDuration: time.Minute,
		MovingSegments:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows[:2] {
		// Observation 1: model-based estimates at 140 m are badly off
		// (the paper reports 171-282 m).
		if row.TrueDist != 140 {
			t.Errorf("stationary true distance = %v", row.TrueDist)
		}
		if row.EstFSPL > 0 && math.Abs(row.EstFSPL-140) < 20 {
			t.Errorf("FSPL estimate %v implausibly accurate", row.EstFSPL)
		}
		if row.N < 500 {
			t.Errorf("stationary period has only %d samples", row.N)
		}
	}
	// Moving segments should look less normal than stationary ones
	// (higher variance at minimum).
	if res.Rows[2].StdDBm <= res.Rows[0].StdDBm {
		t.Errorf("moving std %.2f should exceed stationary %.2f",
			res.Rows[2].StdDBm, res.Rows[0].StdDBm)
	}
	if !strings.Contains(res.Render(), "Observation 1") {
		t.Error("render missing title")
	}
}

func TestTable4Shape(t *testing.T) {
	res, err := Table4(Table4Config{Seed: 6, SamplesPerArea: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d areas", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.Abs(row.Fitted.Gamma1-row.Published.Gamma1) > 0.3 {
			t.Errorf("%s gamma1 fit %.2f vs published %.2f",
				row.Area, row.Fitted.Gamma1, row.Published.Gamma1)
		}
		if math.Abs(row.Fitted.Gamma2-row.Published.Gamma2) > 0.8 {
			t.Errorf("%s gamma2 fit %.2f vs published %.2f",
				row.Area, row.Fitted.Gamma2, row.Published.Gamma2)
		}
		rel := math.Abs(row.Fitted.CriticalDistance-row.Published.CriticalDistance) /
			row.Published.CriticalDistance
		if rel > 0.3 {
			t.Errorf("%s d_c fit %.0f vs published %.0f",
				row.Area, row.Fitted.CriticalDistance, row.Published.CriticalDistance)
		}
	}
}

func TestFig6And7Shape(t *testing.T) {
	res, err := Fig6And7(Fig6And7Config{Seed: 7, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Views) != 2 {
		t.Fatalf("got %d views", len(res.Views))
	}
	for _, view := range res.Views {
		if len(view.Pairs) == 0 {
			t.Fatalf("receiver %d has no pairs", view.Receiver)
		}
		// Observation 3: the three lowest distances are the Sybil-cluster
		// pairs (1,101), (1,102), (101,102).
		for i := 0; i < 3 && i < len(view.Pairs); i++ {
			if !view.Pairs[i].SybilPair {
				t.Errorf("receiver %d: rank-%d pair (%d,%d) is not a Sybil pair",
					view.Receiver, i, view.Pairs[i].A, view.Pairs[i].B)
			}
		}
	}
}

func TestFig10AndFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation sweep")
	}
	f10, err := Fig10(Fig10Config{
		Densities:      []float64{20, 60},
		RunsPerDensity: 1,
		Seed:           1000,
		Duration:       60 * time.Second,
		MaxObservers:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f10.SybilCount == 0 || f10.NormalCount == 0 {
		t.Fatal("training harvest missing a class")
	}
	if f10.TrainAccuracy < 0.95 {
		t.Errorf("training accuracy %.3f, want >= 0.95", f10.TrainAccuracy)
	}
	if f10.Boundary.B <= 0 || f10.Boundary.B > 0.2 {
		t.Errorf("intercept %.4f outside the plausible tight band", f10.Boundary.B)
	}

	res, err := Fig11(Fig11Config{
		Densities:       []float64{20, 60},
		SeedsPerDensity: 1,
		Seed:            2000,
		Duration:        60 * time.Second,
		Boundary:        f10.Boundary,
		MaxObservers:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.VoiceprintDR < 0.75 {
			t.Errorf("density %v: Voiceprint DR %.3f, want >= 0.75", row.Density, row.VoiceprintDR)
		}
		if row.VoiceprintFPR > 0.25 {
			t.Errorf("density %v: Voiceprint FPR %.3f, want <= 0.25", row.Density, row.VoiceprintFPR)
		}
	}

	// Figure 11b: model change leaves Voiceprint intact and inflates
	// CPVSAD's false positives.
	resB, err := Fig11(Fig11Config{
		Densities:       []float64{20, 60},
		SeedsPerDensity: 1,
		Seed:            3000,
		Duration:        60 * time.Second,
		ModelChange:     true,
		Boundary:        f10.Boundary,
		MaxObservers:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range resB.Rows {
		if row.VoiceprintDR < 0.7 {
			t.Errorf("11b density %v: Voiceprint DR %.3f collapsed", row.Density, row.VoiceprintDR)
		}
		if row.CPVSADFPR < res.Rows[i].CPVSADFPR {
			t.Errorf("11b density %v: CPVSAD FPR should inflate under model change (%.3f vs %.3f)",
				row.Density, row.CPVSADFPR, res.Rows[i].CPVSADFPR)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full field-test replay")
	}
	res, err := Fig13(Fig13Config{
		Seed:     9,
		Boundary: lda.Boundary{K: 0.000025, B: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Areas) != 4 {
		t.Fatalf("got %d areas", len(res.Areas))
	}
	wantPeriods := map[string]int{"campus": 13, "rural": 22, "urban": 34, "highway": 11}
	for _, a := range res.Areas {
		if want := wantPeriods[a.Area]; a.Periods != want {
			t.Errorf("%s periods = %d, want %d (paper: %d detections)",
				a.Area, a.Periods, want, want+1)
		}
		if a.Area != "urban" && a.DR < 0.85 {
			t.Errorf("%s DR %.3f, want >= 0.85", a.Area, a.DR)
		}
		if a.Area == "urban" {
			// The paper's urban failure mode: false positives happen at
			// the frozen red-light window and (essentially) nowhere else.
			if a.FPR > 0.3 {
				t.Errorf("urban FPR %.3f, want <= 0.3", a.FPR)
			}
			if a.FalsePositiveEvents > 0 && a.FPDuringStops == 0 {
				t.Errorf("urban FPs (%d) should concentrate at red lights", a.FalsePositiveEvents)
			}
			continue
		}
		if a.FPR > 0.1 {
			t.Errorf("%s FPR %.3f, want <= 0.1", a.Area, a.FPR)
		}
	}
}

func TestComplexityShape(t *testing.T) {
	res, err := Complexity(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs80 != 80*79/2 {
		t.Errorf("pairs = %d, want 3160", res.Pairs80)
	}
	// The paper's OBU took 630 ms for the round; a modern CPU should be
	// well under 2 s even in race mode.
	if res.Round80 > 2*time.Second {
		t.Errorf("80-neighbor round took %v", res.Round80)
	}
	if res.PairBanded <= 0 || res.PairExact <= 0 || res.PairFast <= 0 {
		t.Error("non-positive timings")
	}
}

func TestFastDTWAccuracyShape(t *testing.T) {
	res, err := FastDTWAccuracy(4, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d radii", len(res.Rows))
	}
	prev := math.Inf(1)
	for _, row := range res.Rows {
		if row.MeanRelError < 0 {
			t.Errorf("radius %d: negative error %v", row.Radius, row.MeanRelError)
		}
		if row.MeanRelError > prev+0.02 {
			t.Errorf("radius %d: error %v worse than smaller radius", row.Radius, row.MeanRelError)
		}
		prev = row.MeanRelError
	}
	if last := res.Rows[len(res.Rows)-1].MeanRelError; last > 0.06 {
		t.Errorf("radius-16 error %v, want <= 0.06", last)
	}
}

func TestClassifierAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed ablation")
	}
	harvest := func(seed int64) []PairSample {
		f10, err := Fig10(Fig10Config{
			Densities:      []float64{40},
			RunsPerDensity: 1,
			Seed:           seed,
			Duration:       40 * time.Second,
			MaxObservers:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f10.Points
	}
	res, err := ClassifierAblation(harvest(10), harvest(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d trainers", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Err != "" {
			t.Errorf("%s failed: %s", row.Name, row.Err)
			continue
		}
		if row.Holdout < 0.8 {
			t.Errorf("%s holdout accuracy %.3f", row.Name, row.Holdout)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	out := tab.String()
	for _, want := range []string{"t\n", "a", "bb", "2.5000", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSmartAttackShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed ablation")
	}
	res, err := SmartAttack(77, 40, 40*time.Second, lda.Boundary{K: 0.000025, B: 0.0067})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d strategies", len(res.Rows))
	}
	base := res.Rows[0]
	worst := res.Rows[3] // jitter +-6 dB
	if base.DR < 0.8 {
		t.Errorf("constant-power DR %.3f too low for the baseline", base.DR)
	}
	// The paper's Section VII admission: power control defeats Voiceprint.
	if worst.DR > base.DR-0.3 {
		t.Errorf("heavy power jitter should collapse DR: base %.3f, jitter %.3f",
			base.DR, worst.DR)
	}
}

func TestSCHRateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed ablation")
	}
	res, err := SCHRate(88, 40, lda.Boundary{K: 0.000025, B: 0.0067})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	base := res.Rows[0] // 10 Hz / 20 s CCH baseline
	if base.DR < 0.85 {
		t.Errorf("baseline DR %.3f too low", base.DR)
	}
	for _, row := range res.Rows[1:] {
		// Faster beaconing with a shorter window trades some DR for
		// detection latency but must stay in a usable band: the series'
		// information is bounded by geometry change, not sample count.
		if row.DR < base.DR-0.25 {
			t.Errorf("%v Hz/%v: DR %.3f collapsed vs baseline %.3f",
				row.BeaconRateHz, row.Observation, row.DR, base.DR)
		}
		if row.FPR > 0.15 {
			t.Errorf("%v Hz/%v: FPR %.3f too high", row.BeaconRateHz, row.Observation, row.FPR)
		}
	}
}

func TestTable1(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"Voiceprint", "model-free", "Demirbas", "Yu [19]", "high mobility"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}
