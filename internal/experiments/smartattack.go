package experiments

import (
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
	"voiceprint/internal/vanet"
)

// SmartAttackRow is one power-control strategy's outcome.
type SmartAttackRow struct {
	Strategy string
	DR, FPR  float64
}

// SmartAttackResult quantifies the paper's Section VII admission:
// "Voiceprint cannot identify the malicious node if it adopts power
// control". Each row gives the attacker's Sybil identities a different
// per-beacon power-modulation strategy; the Equation 7 Z-score removes
// only constant offsets, so jitter and power walks erode the shared
// voiceprint and the detection rate with it.
type SmartAttackResult struct {
	Rows []SmartAttackRow
}

// SmartAttack runs the future-work ablation at one density.
func SmartAttack(seed int64, density float64, dur time.Duration, boundary lda.Boundary) (*SmartAttackResult, error) {
	if dur == 0 {
		dur = 60 * time.Second
	}
	strategies := []struct {
		name  string
		power func() *vanet.PowerControl
	}{
		{"constant power (Assumption 3)", func() *vanet.PowerControl { return nil }},
		{"jitter +-1 dB", func() *vanet.PowerControl { return &vanet.PowerControl{JitterDB: 1} }},
		{"jitter +-3 dB", func() *vanet.PowerControl { return &vanet.PowerControl{JitterDB: 3} }},
		{"jitter +-6 dB", func() *vanet.PowerControl { return &vanet.PowerControl{JitterDB: 6} }},
		{"power walk 1 dB/beacon", func() *vanet.PowerControl {
			return &vanet.PowerControl{WalkStepDB: 1, WalkClampDB: 6}
		}},
	}
	det, err := core.New(core.DefaultConfig(boundary))
	if err != nil {
		return nil, err
	}
	res := &SmartAttackResult{}
	for _, s := range strategies {
		armed, err := RunHighwayArmed(SimParams{
			DensityPerKm: density,
			Seed:         seed,
			Duration:     dur,
		}, s.power)
		if err != nil {
			return nil, err
		}
		agg, _, err := VoiceprintRounds(armed, det, 0)
		if err != nil {
			return nil, err
		}
		row := SmartAttackRow{Strategy: s.name}
		if dr, err := agg.MeanDR(); err == nil {
			row.DR = dr
		}
		if fpr, err := agg.MeanFPR(); err == nil {
			row.FPR = fpr
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunHighwayArmed is RunHighway with every Sybil identity armed with a
// power-control modulator before the simulation starts.
func RunHighwayArmed(p SimParams, power func() *vanet.PowerControl) (*SimRun, error) {
	return runHighwayWith(p, func(nodes []*vanet.Node) {
		for _, n := range nodes {
			if !n.Malicious {
				continue
			}
			for i := 1; i < len(n.Identities); i++ {
				n.Identities[i].Power = power()
			}
		}
	})
}

// Render formats the strategy table.
func (r *SmartAttackResult) Render() string {
	t := &Table{
		Title:   "Section VII future work — smart attacker with power control vs Voiceprint",
		Columns: []string{"attacker strategy", "DR", "FPR"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, row.DR, row.FPR)
	}
	return t.String()
}
