package experiments

import (
	"fmt"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
)

// SCHRateRow is one beacon-rate / observation-time combination's outcome.
type SCHRateRow struct {
	BeaconRateHz float64
	Observation  time.Duration
	DR, FPR      float64
	// Samples is the nominal series length (rate * observation).
	Samples int
}

// SCHRateResult implements the paper's first Section VII extension: "we
// will take the Service Channel into account ... increase the beacon rate
// and broadcast the samples much quicker". The question it answers: does
// beaconing at 20/50 Hz let Voiceprint keep its accuracy with a
// proportionally shorter observation window (faster time-to-detection)?
type SCHRateResult struct {
	Rows []SCHRateRow
}

// SCHRate sweeps (rate, observation) pairs with a fixed nominal sample
// budget of 200 beacons, plus the CCH baseline.
func SCHRate(seed int64, density float64, boundary lda.Boundary) (*SCHRateResult, error) {
	combos := []struct {
		rate float64
		obs  time.Duration
	}{
		{10, 20 * time.Second}, // the paper's CCH baseline
		{20, 10 * time.Second},
		{50, 4 * time.Second},
		// Same fast rate without shrinking the window: more samples.
		{50, 20 * time.Second},
	}
	res := &SCHRateResult{}
	for _, c := range combos {
		cfg := core.DefaultConfig(boundary)
		cfg.ObservationTime = c.obs
		det, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		// Simulate long enough for 4 detection rounds at this window.
		run, err := RunHighway(SimParams{
			DensityPerKm: density,
			Seed:         seed,
			Duration:     4 * c.obs,
			BeaconRateHz: c.rate,
		})
		if err != nil {
			return nil, fmt.Errorf("schrate %v Hz: %w", c.rate, err)
		}
		agg, _, err := VoiceprintRounds(run, det, c.obs)
		if err != nil {
			return nil, err
		}
		row := SCHRateRow{
			BeaconRateHz: c.rate,
			Observation:  c.obs,
			Samples:      int(c.rate * c.obs.Seconds()),
		}
		if dr, err := agg.MeanDR(); err == nil {
			row.DR = dr
		}
		if fpr, err := agg.MeanFPR(); err == nil {
			row.FPR = fpr
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the sweep.
func (r *SCHRateResult) Render() string {
	t := &Table{
		Title:   "Section VII future work — SCH beacon rate vs observation time (fixed ~200-sample budget)",
		Columns: []string{"beacon rate", "observation", "nominal samples", "DR", "FPR"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f Hz", row.BeaconRateHz), row.Observation.String(),
			row.Samples, row.DR, row.FPR)
	}
	return t.String()
}
