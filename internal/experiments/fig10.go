package experiments

import (
	"errors"
	"fmt"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
)

// Fig10Config parameterizes the decision-boundary training of Figure 10:
// "several simulations for different traffic densities (5 simulation runs
// at each density)", harvesting every pairwise DTW distance with its
// ground-truth label, then LDA.
type Fig10Config struct {
	// Densities to train over; nil means {10, 20, ..., 100}.
	Densities []float64
	// RunsPerDensity; zero means 5 (the paper's count).
	RunsPerDensity int
	// Seed for the run family.
	Seed int64
	// Duration per run; zero means 100 s.
	Duration time.Duration
	// MaxObservers caps recording receivers per run (memory knob).
	MaxObservers int
}

// Fig10Result is the trained boundary plus the training scatter summary.
type Fig10Result struct {
	Boundary lda.Boundary
	// AbsoluteCap is the trained absolute per-sample distance cap the
	// detector ANDs with the boundary (see core.Config.AbsoluteRawCap).
	AbsoluteCap float64
	// Points is the full labelled scatter (Figure 10's dots, in the
	// normalized-distance plane), plus raw distances.
	Points []PairSample
	// SybilCount and NormalCount split the scatter.
	SybilCount, NormalCount int
	// TrainAccuracy is the boundary's accuracy on its own training set
	// (normalized plane).
	TrainAccuracy float64
}

// DetectorConfig returns the production detector configuration trained by
// this Figure 10 run.
func (r *Fig10Result) DetectorConfig() core.Config {
	cfg := core.DefaultConfig(r.Boundary)
	cfg.AbsoluteRawCap = r.AbsoluteCap
	return cfg
}

// DefaultFig10Config returns the paper's training setup.
func DefaultFig10Config(seed int64) Fig10Config {
	return Fig10Config{
		Densities:      []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		RunsPerDensity: 5,
		Seed:           seed,
	}
}

// capFlagWeight is the false-flag cost used to train the absolute cap.
const capFlagWeight = 100

// Fig10 harvests training data across the density sweep and trains the
// LDA boundary (paper result: k = 0.00054, b = 0.0483; ours differs in
// absolute value because the distance distribution is the simulator's,
// but plays the same role).
func Fig10(cfg Fig10Config) (*Fig10Result, error) {
	if len(cfg.Densities) == 0 {
		cfg.Densities = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	if cfg.RunsPerDensity == 0 {
		cfg.RunsPerDensity = 5
	}
	// Harvesting uses a detector with a disabled boundary (nothing is
	// flagged; we only want the pair distances).
	det, err := core.New(core.DefaultConfig(lda.Boundary{K: 0, B: -1}))
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	seed := cfg.Seed
	for _, den := range cfg.Densities {
		for r := 0; r < cfg.RunsPerDensity; r++ {
			seed++
			run, err := RunHighway(SimParams{
				DensityPerKm: den,
				Seed:         seed,
				Duration:     cfg.Duration,
				MaxObservers: cfg.MaxObservers,
			})
			if err != nil {
				return nil, fmt.Errorf("fig10: density %v run %d: %w", den, r, err)
			}
			_, points, err := VoiceprintRounds(run, det, 0)
			if err != nil {
				return nil, fmt.Errorf("fig10: density %v run %d: %w", den, r, err)
			}
			res.Points = append(res.Points, points...)
		}
	}
	for _, p := range res.Points {
		if p.SybilPair {
			res.SybilCount++
		} else {
			res.NormalCount++
		}
	}
	if res.SybilCount == 0 || res.NormalCount == 0 {
		return nil, errors.New("fig10: training harvest missing a class")
	}
	b, err := lda.TrainLine(NormalizedPoints(res.Points), 8)
	if err != nil {
		return nil, err
	}
	res.Boundary = b
	res.TrainAccuracy = lda.Accuracy(b, NormalizedPoints(res.Points))
	// The absolute cap is a single raw-distance threshold; the heavy flag
	// weight keeps the per-pair false-flag rate near zero, because a
	// round of N identities holds O(N^2) normal pairs and Algorithm 1
	// convicts both members of any flagged pair (see lda.TrainLine docs).
	capBoundary, err := lda.TrainLineWeighted(RawPoints(res.Points), 1, capFlagWeight)
	if err != nil {
		return nil, err
	}
	res.AbsoluteCap = capBoundary.B
	return res, nil
}

// Render formats the result like the paper reports it.
func (r *Fig10Result) Render() string {
	t := &Table{
		Title:   "Figure 10 — LDA decision boundary on the (density, DTW distance) plane",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("training pairs (sybil)", r.SybilCount)
	t.AddRow("training pairs (normal)", r.NormalCount)
	t.AddRow("slope k", fmt.Sprintf("%.6f", r.Boundary.K))
	t.AddRow("intercept b", fmt.Sprintf("%.6f", r.Boundary.B))
	t.AddRow("absolute cap", fmt.Sprintf("%.6f", r.AbsoluteCap))
	t.AddRow("training accuracy", fmt.Sprintf("%.4f", r.TrainAccuracy))
	t.AddRow("paper reference", "k=0.00054, b=0.0483")
	return t.String()
}
