package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/dtw"
	"voiceprint/internal/lda"
	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// ComplexityResult reproduces the Section VI-B computational estimate:
// the paper measured 0.1995 ms to compare two 200-sample RSSI series and
// ~630 ms for a full 80-neighbor detection round (3160 pairs).
type ComplexityResult struct {
	// PairExact, PairFast and PairBanded time one 200-sample comparison.
	PairExact, PairFast, PairBanded time.Duration
	// Round80 times a full Detect over 80 identities.
	Round80 time.Duration
	// Pairs80 is the comparison count of that round (80*79/2 = 3160).
	Pairs80 int
}

// Complexity measures comparison and round times on this machine.
func Complexity(seed int64) (*ComplexityResult, error) {
	rng := rand.New(rand.NewSource(seed))
	mkSeries := func() []float64 {
		s := timeseries.GenRandomWalk(200, -75, 1.5, -95, -40, 100*time.Millisecond, rng)
		z, err := s.ZScoreNormalize()
		if err != nil {
			return s.Values()
		}
		return z.Values()
	}
	x, y := mkSeries(), mkSeries()

	timeIt := func(iters int, f func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}

	res := &ComplexityResult{}
	var err error
	res.PairExact, err = timeIt(200, func() error {
		_, err := dtw.Distance(x, y, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.PairFast, err = timeIt(200, func() error {
		_, err := dtw.FastDistance(x, y, 4, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.PairBanded, err = timeIt(200, func() error {
		w := dtw.SakoeChiba(len(x), len(y), 20)
		_, err := dtw.ConstrainedDistance(x, y, w, nil)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Full 80-neighbor round through the production detector.
	series := make(map[vanet.NodeID]*timeseries.Series, 80)
	for i := 0; i < 80; i++ {
		series[vanet.NodeID(i+1)] = timeseries.GenRandomWalk(
			200, -75, 1.5, -94, -40, 100*time.Millisecond, rng)
	}
	cfg := core.DefaultConfig(lda.Boundary{K: 0.0005, B: 0.05})
	cfg.MinMedianRSSIDBm = 0
	det, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	round, err := det.Detect(series, 100)
	if err != nil {
		return nil, err
	}
	res.Round80 = time.Since(start)
	res.Pairs80 = len(round.Pairs)
	return res, nil
}

// Render formats the comparison against the paper's numbers.
func (r *ComplexityResult) Render() string {
	t := &Table{
		Title:   "Section VI-B — computational cost (paper: 0.1995 ms/pair, ~630 ms for 80 neighbors)",
		Columns: []string{"operation", "measured"},
	}
	t.AddRow("exact DTW, one 200-sample pair", r.PairExact.String())
	t.AddRow("FastDTW (r=4), one pair", r.PairFast.String())
	t.AddRow("banded DTW (r=20), one pair", r.PairBanded.String())
	t.AddRow(fmt.Sprintf("full detection round, 80 identities (%d pairs)", r.Pairs80),
		r.Round80.String())
	return t.String()
}
