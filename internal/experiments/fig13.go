package experiments

import (
	"fmt"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
	"voiceprint/internal/metrics"
	"voiceprint/internal/trace"
)

// Fig13Config parameterizes the Section VI field test: the four-vehicle
// convoy driven through campus, rural, urban and highway areas, detecting
// once per minute on 20 s observation windows with a constant (density 4
// vhls/km) threshold.
type Fig13Config struct {
	Seed int64
	// Boundary and AbsoluteCap are the trained detector artifacts
	// (normally from Fig10).
	Boundary    lda.Boundary
	AbsoluteCap float64
	// Areas to run; nil means the paper's four.
	Areas []trace.Area
	// ObservationTime; zero means 20 s (paper).
	ObservationTime time.Duration
	// DetectionPeriod; zero means 1 min (paper).
	DetectionPeriod time.Duration
}

// Fig13AreaResult is one area's outcome.
type Fig13AreaResult struct {
	Area string
	// Periods counts detection rounds (paper: 14/23/35/11 across areas).
	Periods int
	DR, FPR float64
	// FalsePositiveEvents counts (observer, period) instances with at
	// least one falsely flagged identity.
	FalsePositiveEvents int
	// FPDuringStops counts the false-positive events whose observation
	// window overlaps a red-light stop — the paper's single false
	// detection happened exactly there.
	FPDuringStops int
}

// Fig13Result is the full field test.
type Fig13Result struct {
	Areas []Fig13AreaResult
}

// fieldDensity is the paper's field-test traffic density (4 vhls/km).
const fieldDensity = 4

// Fig13 runs the field test.
func Fig13(cfg Fig13Config) (*Fig13Result, error) {
	areas := cfg.Areas
	if areas == nil {
		areas = trace.AllAreas()
	}
	obsTime := cfg.ObservationTime
	if obsTime == 0 {
		obsTime = 20 * time.Second
	}
	period := cfg.DetectionPeriod
	if period == 0 {
		period = time.Minute
	}
	detCfg := core.DefaultConfig(cfg.Boundary)
	detCfg.AbsoluteRawCap = cfg.AbsoluteCap
	det, err := core.New(detCfg)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{}
	for i, area := range areas {
		eng, err := trace.NewFieldTestEngine(area, cfg.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("fig13: %s: %w", area.Name, err)
		}
		eng.Run(area.Duration)
		truth := eng.Truth()

		out := Fig13AreaResult{Area: area.Name}
		agg := &metrics.Aggregator{}
		for _, oIdx := range sortedLogKeys(eng.Logs()) {
			log := eng.Logs()[oIdx]
			for end := period; end <= area.Duration; end += period {
				from := end - obsTime
				round, err := detectWindow(det, log, from, end, fieldDensity)
				if err != nil {
					return nil, err
				}
				counts, err := metrics.Score(round.Considered, round.Suspects, truth)
				if err != nil {
					return nil, err
				}
				agg.Add(counts)
				if counts.FalsePositives > 0 {
					out.FalsePositiveEvents++
					if windowOverlapsStop(area, from, end) {
						out.FPDuringStops++
					}
				}
				if oIdx == 1 { // count periods once, via the first observer
					out.Periods++
				}
			}
		}
		if dr, err := agg.MeanDR(); err == nil {
			out.DR = dr
		}
		if fpr, err := agg.MeanFPR(); err == nil {
			out.FPR = fpr
		}
		res.Areas = append(res.Areas, out)
	}
	return res, nil
}

// windowOverlapsStop reports whether [from, to) intersects a stop event.
func windowOverlapsStop(a trace.Area, from, to time.Duration) bool {
	for _, s := range a.Stops {
		if from < s.At+s.Hold && to > s.At {
			return true
		}
	}
	return false
}

// Render formats the per-area table.
func (r *Fig13Result) Render() string {
	t := &Table{
		Title: "Figure 13 / Section VI — field test (paper: DR 100%, FPR 0.95%, one red-light FP)",
		Columns: []string{"area", "periods", "DR", "FPR",
			"FP events", "FP during stops"},
	}
	for _, a := range r.Areas {
		t.AddRow(a.Area, a.Periods, a.DR, a.FPR, a.FalsePositiveEvents, a.FPDuringStops)
	}
	return t.String()
}
