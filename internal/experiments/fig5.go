package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"voiceprint/internal/mobility"
	"voiceprint/internal/radio"
	"voiceprint/internal/stats"
	"voiceprint/internal/vanet"
)

// Fig5Config parameterizes the Section III Scenario 1 measurements:
// two vehicles in the campus channel, (a)/(b) stationary at 140 m for two
// 10-minute periods, (c) moving segments of 1 minute each.
type Fig5Config struct {
	Seed int64
	// StationaryDuration per period; zero means 10 min (6000 samples).
	StationaryDuration time.Duration
	// MovingSegments counts the 1-minute moving segments; zero means 4.
	MovingSegments int
}

// Fig5Row is one measurement period's summary.
type Fig5Row struct {
	Label      string
	N          int
	MeanDBm    float64
	StdDBm     float64
	NormalityP float64
	// EstFSPL and EstTRGP are distances inverted from the mean RSSI under
	// the free-space and two-ray ground models; TrueDist is ground truth.
	EstFSPL, EstTRGP, TrueDist float64
}

// Fig5Result reproduces Figure 5 plus Observation 1's distance-estimate
// errors (paper: 281.5/171.2 m FSPL and 263.9/205.8 m TRGP vs a true
// 140 m).
type Fig5Result struct {
	Rows []Fig5Row
	// Histograms renders each period's distribution.
	Histograms []string
}

// Fig5 runs the Scenario 1 measurements on the simulated campus channel.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.StationaryDuration == 0 {
		cfg.StationaryDuration = 10 * time.Minute
	}
	if cfg.MovingSegments == 0 {
		cfg.MovingSegments = 4
	}
	res := &Fig5Result{}

	const trueDist = 140.0
	for period := 0; period < 2; period++ {
		values, err := stationaryRSSI(trueDist, cfg.StationaryDuration, cfg.Seed+int64(period))
		if err != nil {
			return nil, err
		}
		row, hist, err := summarizePeriod(
			fmt.Sprintf("stationary period %d", period+1), values, trueDist)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		res.Histograms = append(res.Histograms, hist)
	}

	for seg := 0; seg < cfg.MovingSegments; seg++ {
		values, dist, err := movingRSSI(time.Minute, cfg.Seed+100+int64(seg))
		if err != nil {
			return nil, err
		}
		row, hist, err := summarizePeriod(
			fmt.Sprintf("moving segment %d", seg+1), values, dist)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		res.Histograms = append(res.Histograms, hist)
	}
	return res, nil
}

// stationaryRSSI records the RSSI log of a receiver 140 m from a
// stationary sender in the campus channel.
func stationaryRSSI(dist float64, dur time.Duration, seed int64) ([]float64, error) {
	tx, err := mobility.Stationary(mobility.Position{X: 0}, dur+time.Minute)
	if err != nil {
		return nil, err
	}
	rx, err := mobility.Stationary(mobility.Position{X: dist}, dur+time.Minute)
	if err != nil {
		return nil, err
	}
	nodes := []*vanet.Node{
		{Mover: tx, Identities: []vanet.Identity{{ID: 1, TxPowerDBm: 20}}},
		{Mover: rx, Identities: []vanet.Identity{{ID: 2, TxPowerDBm: 20}}},
	}
	eng, err := vanet.NewEngine(vanet.Config{
		Radio:     radio.Static{Model: radio.DualSlope{Params: radio.CampusParams}},
		Seed:      seed,
		Observers: []int{1},
	}, nodes)
	if err != nil {
		return nil, err
	}
	eng.Run(dur)
	log := eng.Logs()[1].PerIdentity[1]
	if log == nil {
		return nil, fmt.Errorf("fig5: receiver heard nothing at %v m", dist)
	}
	values := make([]float64, len(log.Obs))
	for i, o := range log.Obs {
		values[i] = o.RSSI
	}
	return values, nil
}

// movingRSSI records one 1-minute segment of a receiver circling the
// sender at campus speeds (10-15 km/h), returning the mean true distance.
func movingRSSI(dur time.Duration, seed int64) ([]float64, float64, error) {
	rng := rand.New(rand.NewSource(seed))
	tx, err := mobility.Stationary(mobility.Position{X: 0}, dur+time.Minute)
	if err != nil {
		return nil, 0, err
	}
	// Receiver wanders: waypoints every 5 s at 3-4 m/s, distances 60-250 m.
	var wps []mobility.Waypoint
	x, y := 100.0, 50.0
	for t := time.Duration(0); t <= dur+time.Minute; t += 5 * time.Second {
		wps = append(wps, mobility.Waypoint{T: t, Pos: mobility.Position{X: x, Y: y}})
		speed := 3 + rng.Float64()
		angle := rng.Float64() * 2 * math.Pi
		x += speed * 5 * math.Cos(angle)
		y += speed * 5 * math.Sin(angle)
		// Keep within a campus-sized annulus around the sender.
		d := x*x + y*y
		if d > 250*250 {
			x *= 0.8
			y *= 0.8
		}
		if d < 60*60 {
			x *= 1.3
			y *= 1.3
		}
	}
	rx, err := mobility.NewScripted(wps)
	if err != nil {
		return nil, 0, err
	}
	nodes := []*vanet.Node{
		{Mover: tx, Identities: []vanet.Identity{{ID: 1, TxPowerDBm: 20}}},
		{Mover: rx, Identities: []vanet.Identity{{ID: 2, TxPowerDBm: 20}}},
	}
	eng, err := vanet.NewEngine(vanet.Config{
		Radio:     radio.Static{Model: radio.DualSlope{Params: radio.CampusParams}},
		Seed:      seed + 1,
		Observers: []int{1},
	}, nodes)
	if err != nil {
		return nil, 0, err
	}
	eng.Run(dur)
	log := eng.Logs()[1].PerIdentity[1]
	if log == nil {
		return nil, 0, fmt.Errorf("fig5: moving receiver heard nothing")
	}
	values := make([]float64, len(log.Obs))
	var distSum float64
	for i, o := range log.Obs {
		values[i] = o.RSSI
		distSum += o.TrueDist
	}
	return values, distSum / float64(len(values)), nil
}

func summarizePeriod(label string, values []float64, trueDist float64) (Fig5Row, string, error) {
	summary, err := stats.Summarize(values)
	if err != nil {
		return Fig5Row{}, "", err
	}
	normality, err := stats.ChiSquareNormality(values, 10, 0.05)
	if err != nil {
		return Fig5Row{}, "", err
	}
	// Observation 1's estimate: invert the mean RSSI through a predefined
	// model, PL = Pt - mean(RSSI) (unity gains).
	pl := 20 - summary.Mean
	estFSPL, err := radio.EstimateDistance(radio.FreeSpace{}, pl, 1, 100000)
	if err != nil {
		estFSPL = -1 // out of model range; reported as such
	}
	estTRGP, err := radio.EstimateDistance(radio.TwoRayGround{}, pl, 1, 100000)
	if err != nil {
		estTRGP = -1
	}
	hist, err := stats.NewHistogram(values, 20)
	if err != nil {
		return Fig5Row{}, "", err
	}
	row := Fig5Row{
		Label:      label,
		N:          summary.N,
		MeanDBm:    summary.Mean,
		StdDBm:     summary.StdDev,
		NormalityP: normality.PValue,
		EstFSPL:    estFSPL,
		EstTRGP:    estTRGP,
		TrueDist:   trueDist,
	}
	return row, fmt.Sprintf("%s\n%s", label, hist.Render(40)), nil
}

// Render formats the Figure 5 table.
func (r *Fig5Result) Render() string {
	t := &Table{
		Title: "Figure 5 / Observation 1 — RSSI distributions and model-based distance estimates",
		Columns: []string{"period", "n", "mean dBm", "std dB", "normality p",
			"est FSPL m", "est TRGP m", "true m"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.N, row.MeanDBm, row.StdDBm, row.NormalityP,
			row.EstFSPL, row.EstTRGP, row.TrueDist)
	}
	return t.String()
}
