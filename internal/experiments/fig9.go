package experiments

import (
	"fmt"

	"voiceprint/internal/dtw"
)

// Fig9Result is the paper's worked DTW example.
type Fig9Result struct {
	X, Y     []float64
	Distance float64
	Path     dtw.Path
}

// Fig9 evaluates the paper's Figure 9 example, X = {1,1,4,1,1} and
// Y = {2,2,2,4,2,2}, with the paper's own Equations 3-6. Exact evaluation
// yields 5; the figure caption states 9, which matches no standard step
// pattern we could reconstruct (see EXPERIMENTS.md).
func Fig9() (*Fig9Result, error) {
	x := []float64{1, 1, 4, 1, 1}
	y := []float64{2, 2, 2, 4, 2, 2}
	d, path, err := dtw.DistanceWithPath(x, y, nil)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{X: x, Y: y, Distance: d, Path: path}, nil
}

// Render formats the example.
func (r *Fig9Result) Render() string {
	out := fmt.Sprintf("Figure 9 — worked DTW example\nX = %v\nY = %v\n", r.X, r.Y)
	out += fmt.Sprintf("DTW distance (Eqs 3-6, squared cost): %v\n", r.Distance)
	out += fmt.Sprintf("optimal warp path: %v\n", r.Path)
	out += "note: the paper's caption reports 9; exact evaluation of its own equations yields 5\n"
	return out
}
