package baseline

import (
	"math/rand"
	"testing"

	"voiceprint/internal/radio"
	"voiceprint/internal/vanet"
)

func testModel() radio.Model {
	return radio.Shadowing{Exponent: 2.7, SigmaDB: 3.9}
}

func newDetector(t *testing.T) *Detector {
	t.Helper()
	d, err := New(Config{Model: testModel()})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// honestReport simulates a truthful sender at trueDist == claimedDist.
func honestReport(d *Detector, n int, dist float64, model radio.Model, rng *rand.Rand) *WitnessReport {
	r := &WitnessReport{}
	for i := 0; i < n; i++ {
		rssi := radio.RxPowerDBm(20, 0, model.SamplePathLossDB(dist, rng))
		r.Deviations = append(r.Deviations, d.Deviation(rssi, dist))
	}
	return r
}

// sybilReport simulates a Sybil identity: beacons originate at trueDist
// but the claim says claimedDist.
func sybilReport(d *Detector, n int, trueDist, claimedDist float64, model radio.Model, rng *rand.Rand) *WitnessReport {
	r := &WitnessReport{}
	for i := 0; i < n; i++ {
		rssi := radio.RxPowerDBm(20, 0, model.SamplePathLossDB(trueDist, rng))
		r.Deviations = append(r.Deviations, d.Deviation(rssi, claimedDist))
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing model should error")
	}
	if _, err := New(Config{Model: testModel(), SigmaDB: -1}); err == nil {
		t.Error("negative sigma should error")
	}
	if _, err := New(Config{Model: testModel(), Alpha: 1}); err == nil {
		t.Error("alpha 1 should error")
	}
	if _, err := New(Config{Model: testModel(), MinSamples: -1}); err == nil {
		t.Error("negative MinSamples should error")
	}
	d := newDetector(t)
	cfg := d.Config()
	if cfg.SigmaDB != 3.9 || cfg.Alpha != 0.05 || cfg.MinSamples != 10 || cfg.AssumedTxPowerDBm != 20 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestDetectAcceptsHonestNodes(t *testing.T) {
	d := newDetector(t)
	rng := rand.New(rand.NewSource(121))
	model := testModel() // world matches the assumed model
	flagged := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		own := map[vanet.NodeID]*WitnessReport{
			1: honestReport(d, 50, 80+rng.Float64()*200, model, rng),
		}
		res, err := d.Detect(own, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Suspects[1] {
			flagged++
		}
	}
	// Should be around alpha = 5%; allow generous slack.
	if flagged > trials/5 {
		t.Errorf("honest node flagged %d/%d times", flagged, trials)
	}
}

func TestDetectRejectsSybilClaims(t *testing.T) {
	d := newDetector(t)
	rng := rand.New(rand.NewSource(122))
	model := testModel()
	detected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		// Attacker at 100 m claims to be at 250 m.
		own := map[vanet.NodeID]*WitnessReport{
			101: sybilReport(d, 50, 100, 250, model, rng),
		}
		res, err := d.Detect(own, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Suspects[101] {
			detected++
		}
	}
	if detected < 90 {
		t.Errorf("Sybil detected only %d/%d times", detected, trials)
	}
}

func TestDetectCooperationIncreasesPower(t *testing.T) {
	d := newDetector(t)
	model := testModel()
	// A subtle false claim (150 m -> 190 m): few samples alone, many with
	// witnesses.
	detectRate := func(nWitnesses int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		detected := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			own := map[vanet.NodeID]*WitnessReport{
				101: sybilReport(d, 12, 150, 190, model, rng),
			}
			var wit []map[vanet.NodeID]*WitnessReport
			for w := 0; w < nWitnesses; w++ {
				wit = append(wit, map[vanet.NodeID]*WitnessReport{
					101: sybilReport(d, 12, 120+rng.Float64()*100, 160+rng.Float64()*100, model, rng),
				})
			}
			res, err := d.Detect(own, wit)
			if err != nil {
				t.Fatal(err)
			}
			if res.Suspects[101] {
				detected++
			}
		}
		return float64(detected) / trials
	}
	alone := detectRate(0, 123)
	cooperative := detectRate(6, 124)
	if cooperative <= alone {
		t.Errorf("cooperation did not help: alone %.2f, with witnesses %.2f", alone, cooperative)
	}
}

// TestDetectBreaksUnderModelDrift pins the Figure 11b mechanism: when the
// real channel's parameters drift from the assumed model, honest nodes
// start failing the position test.
func TestDetectBreaksUnderModelDrift(t *testing.T) {
	d := newDetector(t)
	rng := rand.New(rand.NewSource(125))
	drifted := radio.Shadowing{Exponent: 3.4, SigmaDB: 3.9} // true world
	flagged := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		own := map[vanet.NodeID]*WitnessReport{
			1: honestReport(d, 50, 100+rng.Float64()*150, drifted, rng),
		}
		res, err := d.Detect(own, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Suspects[1] {
			flagged++
		}
	}
	if flagged < 60 {
		t.Errorf("model drift should break the test; honest node flagged only %d/%d", flagged, trials)
	}
}

func TestDetectSkipsSparseIdentities(t *testing.T) {
	d := newDetector(t)
	rng := rand.New(rand.NewSource(126))
	own := map[vanet.NodeID]*WitnessReport{
		1: honestReport(d, 3, 100, testModel(), rng), // below MinSamples
		2: nil,
	}
	res, err := d.Detect(own, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tested) != 0 || res.Skipped != 1 {
		t.Errorf("tested=%v skipped=%d, want none tested, 1 skipped", res.Tested, res.Skipped)
	}
}

func TestReportFromLog(t *testing.T) {
	d := newDetector(t)
	obs := []vanet.Obs{
		{RSSI: -70, ClaimedDist: 100},
		{RSSI: -80, ClaimedDist: 100},
	}
	r := d.ReportFromLog(obs)
	if len(r.Deviations) != 2 {
		t.Fatalf("got %d deviations", len(r.Deviations))
	}
	expected := d.Deviation(-70, 100)
	if r.Deviations[0] != expected {
		t.Errorf("deviation = %v, want %v", r.Deviations[0], expected)
	}
	// Deviations differ by the RSSI difference.
	if r.Deviations[0]-r.Deviations[1] != 10 {
		t.Error("deviations should preserve RSSI differences")
	}
}
