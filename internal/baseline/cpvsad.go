// Package baseline implements CPVSAD, the Cooperative Position
// Verification based Sybil Attack Detection scheme of Yu, Xu and Xiao
// ("Detecting Sybil attacks in VANETs", JPDC 2013, the paper's [19]),
// which Section V compares Voiceprint against.
//
// CPVSAD is the archetypal model-dependent cooperative detector: a
// verifier collects the RSSI observations for each claimer — its own plus
// those reported by witness vehicles — and statistically tests whether
// they are consistent with the claimer's *claimed* position under a
// predefined log-normal shadowing model (sigma = 3.9 dB, significance
// 0.05 in the paper's comparison). A Sybil identity claims a false
// position while its beacons physically originate at the attacker, so the
// expected-vs-observed power test rejects it.
//
// Two properties matter for the Figure 11 comparison:
//   - cooperation helps with density: more witnesses -> more samples ->
//     more test power, so CPVSAD improves as traffic thickens;
//   - model dependence hurts under parameter drift: when the true channel
//     parameters change (Figure 11b), the expected power is computed from
//     the wrong model and the test breaks down.
package baseline

import (
	"errors"
	"math"
	"time"

	"voiceprint/internal/radio"
	"voiceprint/internal/stats"
	"voiceprint/internal/vanet"
)

// Config parameterizes a CPVSAD verifier.
type Config struct {
	// Model is the predefined propagation model the verifier assumes
	// (the paper's comparison uses shadowing with sigma 3.9 dB).
	Model radio.Model
	// SigmaDB is the shadowing standard deviation assumed by the test.
	// Zero means 3.9.
	SigmaDB float64
	// Alpha is the test significance level; zero means 0.05.
	Alpha float64
	// ObservationTime is the collection window (the paper gives CPVSAD
	// 10 s). Informational; the caller slices windows.
	ObservationTime time.Duration
	// MinSamples is the minimum pooled sample count to run the test;
	// zero means 10.
	MinSamples int
	// AssumedTxPowerDBm is the transmit power the verifier assumes for
	// every sender (CPVSAD predates per-identity power spoofing; 20 dBm
	// EIRP is the DSRC default). Zero means 20.
	AssumedTxPowerDBm float64
	// EffectiveSamplesPerWindow is the number of effectively independent
	// shadowing draws a witness's window provides (shadowing decorrelates
	// with distance moved, ~5 decorrelation lengths per 10 s window at
	// highway speeds). Zero means 5.
	EffectiveSamplesPerWindow int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Model == nil {
		return errors.New("baseline: CPVSAD needs a propagation model")
	}
	if c.SigmaDB < 0 {
		return errors.New("baseline: sigma must be non-negative")
	}
	if c.Alpha < 0 || c.Alpha >= 1 {
		return errors.New("baseline: alpha must be in [0,1)")
	}
	if c.MinSamples < 0 {
		return errors.New("baseline: MinSamples must be non-negative")
	}
	return nil
}

// Detector is a CPVSAD verifier.
type Detector struct {
	cfg Config
}

// New builds a Detector, applying the paper's defaults.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SigmaDB == 0 {
		cfg.SigmaDB = 3.9
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 10
	}
	if cfg.AssumedTxPowerDBm == 0 {
		cfg.AssumedTxPowerDBm = 20
	}
	if cfg.EffectiveSamplesPerWindow == 0 {
		cfg.EffectiveSamplesPerWindow = 5
	}
	if cfg.EffectiveSamplesPerWindow < 0 {
		return nil, errors.New("baseline: effective samples must be positive")
	}
	return &Detector{cfg: cfg}, nil
}

// WitnessReport is what one witness contributes for one claimer: each
// received beacon's RSSI and the distance from the *witness* to the
// claimer's claimed position at reception time.
type WitnessReport struct {
	// Deviations holds, per received beacon, the observed RSSI minus the
	// RSSI expected at the claimed position under the verifier's model.
	// Pooling deviations (rather than raw RSSI) lets reports from
	// witnesses at different ranges share one z-test.
	Deviations []float64
}

// Result is one CPVSAD round outcome.
type Result struct {
	// Suspects holds identities whose position test rejected.
	Suspects map[vanet.NodeID]bool
	// Tested lists identities with enough pooled samples.
	Tested []vanet.NodeID
	// Skipped counts identities with too few samples.
	Skipped int
}

// expectedRSSI is the model's predicted received power at distance d.
func (d *Detector) expectedRSSI(dist float64) float64 {
	return radio.RxPowerDBm(d.cfg.AssumedTxPowerDBm, 0, d.cfg.Model.MeanPathLossDB(dist))
}

// Deviation returns observed minus expected RSSI for one beacon heard at
// claimedDist; witnesses use it to build reports.
func (d *Detector) Deviation(rssi, claimedDist float64) float64 {
	return rssi - d.expectedRSSI(claimedDist)
}

// Detect runs the cooperative position test for each claimer. Each
// witness (the verifier included) contributes its window-mean deviation
// for the claimer; under H0 (honest claim) that mean is ~N(0, sigma^2) —
// one draw per witness, because shadowing is correlated within a window,
// so averaging beacons does not shrink the shadow term. Each witness mean
// yields a two-sided p-value, and the per-claimer verdict combines them
// with Fisher's method: evidence accumulates across witnesses regardless
// of the *sign* of each witness's deviation (a Sybil's false position
// reads too near to some witnesses and too far to others).
//
// This is what makes CPVSAD's detection rate grow with traffic density
// (more witnesses, more combined power) — the Figure 11a trend — while a
// stale propagation model biases every witness's expected power and
// poisons the combination (the Figure 11b collapse).
func (d *Detector) Detect(own map[vanet.NodeID]*WitnessReport, witnesses []map[vanet.NodeID]*WitnessReport) (*Result, error) {
	res := &Result{Suspects: make(map[vanet.NodeID]bool)}
	pvalues := make(map[vanet.NodeID][]float64)
	samples := make(map[vanet.NodeID]int)
	merge := func(reports map[vanet.NodeID]*WitnessReport) {
		for id, r := range reports {
			if r == nil || len(r.Deviations) == 0 {
				continue
			}
			mean := stats.Mean(r.Deviations)
			nEff := d.cfg.EffectiveSamplesPerWindow
			if len(r.Deviations) < nEff {
				nEff = len(r.Deviations)
			}
			z := mean * sqrtFloat(float64(nEff)) / d.cfg.SigmaDB
			p := 2 * (1 - stats.NormalCDF(abs(z), 0, 1))
			pvalues[id] = append(pvalues[id], p)
			samples[id] += len(r.Deviations)
		}
	}
	merge(own)
	for _, w := range witnesses {
		merge(w)
	}
	for id, ps := range pvalues {
		if samples[id] < d.cfg.MinSamples {
			res.Skipped++
			continue
		}
		res.Tested = append(res.Tested, id)
		verdict, err := stats.FisherCombine(ps, d.cfg.Alpha)
		if err != nil {
			return nil, err
		}
		if verdict.Reject {
			res.Suspects[id] = true
		}
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sqrtFloat(x float64) float64 { return math.Sqrt(x) }

// ReportFromLog converts one receiver's identity log window into a
// WitnessReport under this verifier's model. It is shared by the verifier
// (its own observations) and by witnesses.
func (d *Detector) ReportFromLog(obs []vanet.Obs) *WitnessReport {
	r := &WitnessReport{Deviations: make([]float64, 0, len(obs))}
	for _, o := range obs {
		r.Deviations = append(r.Deviations, d.Deviation(o.RSSI, o.ClaimedDist))
	}
	return r
}

// Config returns the effective configuration.
func (d *Detector) Config() Config { return d.cfg }
