package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// instrumentKind discriminates what an instrument renders as.
type instrumentKind uint8

const (
	kindCounter instrumentKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// instrument is one registered metric: render metadata plus a reference
// to the live value.
type instrument struct {
	name, help string
	kind       instrumentKind
	// labelKey/labelVal is the optional constant label (histograms with a
	// shared family name, e.g. per-stage latency keyed by stage).
	labelKey, labelVal string

	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() int64
	hist        *Histogram
}

// Registry is an ordered set of instruments with a namespace prefix.
// Registration order is render order (stable golden output); duplicate
// names panic at registration — a duplicate is a programmer error and
// must fail loudly at startup, not corrupt a scrape. Instruments sharing
// a family name are allowed only for histograms distinguished by a
// constant label, and must be registered consecutively so the family's
// HELP/TYPE header is emitted exactly once.
//
// Registration is not synchronized: build the registry up front, then
// render from any goroutine (rendering only reads).
type Registry struct {
	namespace   string
	instruments []instrument
	families    map[string]bool // family name → labeled?
	series      map[string]bool // family name + constant label
}

// NewRegistry builds an empty registry; namespace (e.g. "voiceprintd")
// prefixes every rendered Prometheus metric name. The JSON rendering
// uses bare names — it reproduces the legacy counter map, which never
// carried the prefix.
func NewRegistry(namespace string) *Registry {
	return &Registry{
		namespace: namespace,
		families:  make(map[string]bool),
		series:    make(map[string]bool),
	}
}

func (r *Registry) add(in instrument) {
	labeled := in.labelKey != ""
	key := in.name
	if labeled {
		key = in.name + "{" + in.labelKey + "=" + in.labelVal + "}"
	}
	if was, ok := r.families[in.name]; ok && was != labeled {
		panic(fmt.Sprintf("obs: metric %q registered both with and without labels", in.name))
	}
	if r.series[key] {
		panic(fmt.Sprintf("obs: duplicate metric %q", key))
	}
	r.families[in.name] = labeled
	r.series[key] = true
	r.instruments = append(r.instruments, in)
}

// Counter registers a counter under name.
func (r *Registry) Counter(name, help string, c *Counter) {
	r.add(instrument{name: name, help: help, kind: kindCounter, counter: c})
}

// CounterFunc registers a callback-backed monotonic counter (state that
// already lives elsewhere and is summed at scrape time).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.add(instrument{name: name, help: help, kind: kindCounterFunc, counterFunc: fn})
}

// Gauge registers a gauge under name.
func (r *Registry) Gauge(name, help string, g *Gauge) {
	r.add(instrument{name: name, help: help, kind: kindGauge, gauge: g})
}

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.add(instrument{name: name, help: help, kind: kindGaugeFunc, gaugeFunc: fn})
}

// Histogram registers a histogram under name. labels, when given, must
// be exactly one constant key/value pair distinguishing this histogram
// within a family of the same name (all members registered
// consecutively).
func (r *Registry) Histogram(name, help string, h *Histogram, labels ...string) {
	in := instrument{name: name, help: help, kind: kindHistogram, hist: h}
	switch len(labels) {
	case 0:
	case 2:
		in.labelKey, in.labelVal = labels[0], labels[1]
	default:
		panic("obs: Histogram takes zero or one constant label pair")
	}
	r.add(in)
}

// WritePrometheus renders every instrument in registration order in the
// Prometheus text exposition format (version 0.0.4): one HELP/TYPE
// header per metric family followed by its series. Counter and gauge
// values are exact; histogram series follow the cumulative
// _bucket{le=...}/_sum/_count convention over this package's fixed
// bucket layout.
func (r *Registry) WritePrometheus(w io.Writer) error {
	prevFamily := ""
	for _, in := range r.instruments {
		full := in.name
		if r.namespace != "" {
			full = r.namespace + "_" + in.name
		}
		if full != prevFamily {
			typ := "counter"
			switch in.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				full, sanitizeHelp(in.help), full, typ); err != nil {
				return err
			}
			prevFamily = full
		}
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", full, in.counter.Load())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", full, in.counterFunc())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", full, in.gauge.Load())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", full, in.gaugeFunc())
		case kindHistogram:
			err = writeHistogram(w, full, in)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram's cumulative bucket series, sum
// and count, carrying the instrument's constant label through every
// series.
func writeHistogram(w io.Writer, full string, in instrument) error {
	snap := in.hist.Snapshot()
	label := ""
	if in.labelKey != "" {
		label = fmt.Sprintf("%s=%q,", in.labelKey, in.labelVal)
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += snap.Buckets[i]
		le := "+Inf"
		if upper := BucketUpper(i); !math.IsInf(upper, 1) {
			le = fmt.Sprintf("%d", uint64(upper))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", full, label, le, cum); err != nil {
			return err
		}
	}
	suffixLabel := ""
	if in.labelKey != "" {
		suffixLabel = fmt.Sprintf("{%s=%q}", in.labelKey, in.labelVal)
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", full, suffixLabel, snap.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", full, suffixLabel, snap.Count)
	return err
}

// WriteJSON renders the registry's plain counters (only — not gauges,
// callback instruments or histograms) as a flat JSON object of bare
// name → value, byte-identical to encoding/json marshaling of the
// legacy map[string]uint64 counter snapshot. This is the compatibility
// surface: the testkit's conservation accounting and any pre-redesign
// scraper parse exactly this shape.
func (r *Registry) WriteJSON(w io.Writer) error {
	m := make(map[string]uint64)
	for _, in := range r.instruments {
		if in.kind == kindCounter {
			m[in.name] = in.counter.Load()
		}
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Names returns the registered family names in registration order,
// de-duplicated (histogram families with constant labels appear once).
func (r *Registry) Names() []string {
	var out []string
	for _, in := range r.instruments {
		if n := len(out); n > 0 && out[n-1] == in.name {
			continue
		}
		out = append(out, in.name)
	}
	return out
}

// sanitizeHelp keeps HELP lines single-line (the format's only escape
// concern we can actually produce).
func sanitizeHelp(help string) string {
	if !strings.ContainsAny(help, "\n\\") {
		return help
	}
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}
