package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition of a small registry:
// stable ordering (registration order), one HELP/TYPE header per family,
// cumulative histogram buckets with the constant label carried through.
func TestWritePrometheusGolden(t *testing.T) {
	var (
		c Counter
		g Gauge
		h Histogram
	)
	c.Add(42)
	g.Set(-7)
	h.Observe(1000) // bucket 0
	h.Observe(5000) // bucket 3 (4096 < v <= 8192)

	r := NewRegistry("test")
	r.Counter("events_total", "Events seen.", &c)
	r.Gauge("backlog", "Queued items.", &g)
	r.GaugeFunc("workers", "Live workers.", func() int64 { return 3 })
	r.CounterFunc("derived_total", "Derived monotonic value.", func() uint64 { return 9 })
	r.Histogram("latency_ns", "Op latency.", &h, "op", "read")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	wantPrefix := `# HELP test_events_total Events seen.
# TYPE test_events_total counter
test_events_total 42
# HELP test_backlog Queued items.
# TYPE test_backlog gauge
test_backlog -7
# HELP test_workers Live workers.
# TYPE test_workers gauge
test_workers 3
# HELP test_derived_total Derived monotonic value.
# TYPE test_derived_total counter
test_derived_total 9
# HELP test_latency_ns Op latency.
# TYPE test_latency_ns histogram
test_latency_ns_bucket{op="read",le="1024"} 1
test_latency_ns_bucket{op="read",le="2048"} 1
test_latency_ns_bucket{op="read",le="4096"} 1
test_latency_ns_bucket{op="read",le="8192"} 2
`
	if !strings.HasPrefix(got, wantPrefix) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want prefix ---\n%s", got, wantPrefix)
	}
	for _, want := range []string{
		"test_latency_ns_bucket{op=\"read\",le=\"+Inf\"} 2\n",
		"test_latency_ns_sum{op=\"read\"} 6000\n",
		"test_latency_ns_count{op=\"read\"} 2\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	// One header per family, even with multiple labeled members.
	var h2 Histogram
	r.Histogram("latency_ns", "Op latency.", &h2, "op", "write")
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE test_latency_ns histogram"); n != 1 {
		t.Errorf("family header emitted %d times, want once", n)
	}
}

// TestWriteJSONMatchesLegacyMap: the JSON rendering is byte-identical to
// encoding/json marshaling of the bare counter map — the compatibility
// contract the service's ?format=json endpoint and the testkit's
// conservation accounting rely on.
func TestWriteJSONMatchesLegacyMap(t *testing.T) {
	var a, b Counter
	a.Add(3)
	b.Add(99)
	var h Histogram
	h.Observe(1)

	r := NewRegistry("test")
	r.Counter("zulu_total", "Registered first, sorts last.", &b)
	r.Counter("alpha_total", "Registered second, sorts first.", &a)
	r.GaugeFunc("ignored_gauge", "Gauges are not part of the legacy map.", func() int64 { return 1 })
	r.Histogram("ignored_ns", "Histograms are not part of the legacy map.", &h)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(map[string]uint64{"zulu_total": 99, "alpha_total": 3})
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Errorf("WriteJSON = %s, want %s", sb.String(), want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	var c Counter
	var h Histogram
	r := NewRegistry("test")
	r.Counter("x_total", "", &c)
	mustPanic("duplicate counter", func() { r.Counter("x_total", "", &c) })
	mustPanic("label/no-label mix", func() { r.Histogram("x_total", "", &h, "k", "v") })
	r.Histogram("h_ns", "", &h, "k", "a")
	mustPanic("duplicate labeled series", func() { r.Histogram("h_ns", "", &h, "k", "a") })
	mustPanic("bad label arity", func() { r.Histogram("h2_ns", "", &h, "k") })

	if got := r.Names(); len(got) != 2 || got[0] != "x_total" || got[1] != "h_ns" {
		t.Errorf("Names() = %v", got)
	}
}
