package obs

import (
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the le semantics of the fixed layout: a
// value exactly on a bucket's upper bound counts into that bucket, one
// past it counts into the next.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 0},
		{1024, 0}, // exactly the first upper bound
		{1025, 1}, // one past it
		{2048, 1}, // second upper bound
		{2049, 2}, //
		{1 << 20, 10},
		{1<<20 + 1, 11},
		{1 << 33, NumBuckets - 2},   // last finite upper bound (~8.6 s)
		{1<<33 + 1, NumBuckets - 1}, // overflow
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(uint64(c.v)); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 0; i < NumBuckets-1; i++ {
		upper := BucketUpper(i)
		if got := bucketIndex(uint64(upper)); got != i {
			t.Errorf("value at upper bound %v landed in bucket %d, want %d", upper, got, i)
		}
		if got := bucketIndex(uint64(upper) + 1); got != i+1 {
			t.Errorf("value past upper bound %v landed in bucket %d, want %d", upper, got, i+1)
		}
	}
	if !math.IsInf(BucketUpper(NumBuckets-1), 1) {
		t.Error("last bucket upper bound must be +Inf")
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500)     // bucket 0
	h.Observe(-17)     // clamps to 0, bucket 0
	h.Observe(3000)    // bucket 2 (2048 < v <= 4096)
	h.Observe(1 << 40) // overflow bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 500+0+3000+1<<40 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	if s.Buckets[0] != 2 || s.Buckets[2] != 1 || s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("bucket spread = %v", s.Buckets)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(int64(i) * 1000)
		b.Observe(int64(i) * 100_000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != sa.Count+sb.Count {
		t.Errorf("merged Count = %d", merged.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Errorf("merged Sum = %d", merged.Sum)
	}
	var total uint64
	for i := range merged.Buckets {
		if merged.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, merged.Buckets[i], sa.Buckets[i]+sb.Buckets[i])
		}
		total += merged.Buckets[i]
	}
	if total != merged.Count {
		t.Errorf("Σ buckets = %d != Count %d", total, merged.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations spread uniformly over (0, 1ms]: the median
	// estimate must land within a factor-of-two band of 500 µs, p99
	// within a band of 990 µs (bucket-resolution estimates).
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 10_000) // 10 µs .. 1 ms
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 250_000 || p50 > 1_000_000 {
		t.Errorf("p50 = %v ns, want within (250µs, 1ms]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 500_000 || p99 > 1_100_000 {
		t.Errorf("p99 = %v ns, want near 1ms", p99)
	}
	if p0 := s.Quantile(0); p0 <= 0 || p0 > 20_000 {
		t.Errorf("p0 = %v ns, want within the first occupied bucket", p0)
	}
	if q := s.Quantile(1); q < s.Quantile(0.99) {
		t.Errorf("quantiles must be monotone: p100 %v < p99 %v", q, s.Quantile(0.99))
	}
	// Everything in the overflow bucket reports the last finite bound.
	var inf Histogram
	inf.Observe(1 << 50)
	if q := inf.Snapshot().Quantile(0.5); q != BucketUpper(NumBuckets-2) {
		t.Errorf("overflow quantile = %v, want last finite bound %v", q, BucketUpper(NumBuckets-2))
	}
	// NaN q must not panic or poison.
	if q := s.Quantile(math.NaN()); q != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this doubles as the lock-freedom proof, and the final
// snapshot must conserve every observation.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*per)
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Errorf("Σ buckets = %d != Count %d", total, s.Count)
	}
}
