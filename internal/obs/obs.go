// Package obs is the daemon's dependency-free instrumentation layer:
// lock-free counters, gauges and fixed-bucket histograms, plus a
// Registry that renders them in Prometheus text exposition format and as
// the legacy flat JSON counter map.
//
// Design constraints, in order:
//
//  1. Zero dependencies. The module vendors nothing; the exposition
//     format is simple enough to emit by hand.
//  2. Hot-path writes are a single atomic RMW (two for histograms). No
//     locks, no maps, no allocation on Observe/Add.
//  3. The zero value of every instrument is ready to use, so metric
//     structs can be plain value fields (`var m Metrics` works) and
//     instruments register with a Registry only when something needs to
//     render them.
//
// Instruments are owned by their embedding struct; a Registry holds
// references and render metadata (name, help, type, optional constant
// label), never the values themselves. Building a Registry is cheap, so
// callers may construct one per admin handler rather than sharing a
// global.
package obs

import "sync/atomic"

// Counter is a lock-free monotonic counter. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
// voiceprintvet:noescape
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
// voiceprintvet:noescape
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
//
// voiceprintvet:noescape
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas decrease it).
//
// voiceprintvet:noescape
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
