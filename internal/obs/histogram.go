package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed log-spaced (power-of-two) buckets over
// nanosecond-scale values. Bucket i covers (upper(i-1), upper(i)] with
// upper(i) = 1<<(histMinShift+i) ns, so the first bucket tops out at
// ~1 µs and the last finite bucket at ~8.6 s; everything beyond lands in
// the +Inf overflow bucket. The layout is compile-time fixed: observing
// is a bit-length computation and one atomic add, snapshots from
// different histograms (or different processes of the same build) merge
// bucket-by-bucket without negotiation.
const (
	histMinShift = 10 // first bucket upper bound: 1<<10 ns ≈ 1 µs
	// NumBuckets is the total bucket count including the +Inf overflow
	// bucket (NumBuckets-1 finite buckets).
	NumBuckets = 25
)

// BucketUpper returns bucket i's inclusive upper bound in nanoseconds;
// the last bucket returns +Inf.
func BucketUpper(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << (histMinShift + uint(i)))
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v <= 1<<histMinShift {
		return 0
	}
	idx := bits.Len64((v - 1) >> histMinShift)
	if idx > NumBuckets-1 {
		return NumBuckets - 1
	}
	return idx
}

// Histogram is a lock-free histogram of nanosecond-scale values with the
// fixed log-spaced bucket layout above. The zero value is ready to use.
// Observe is two atomic adds; Snapshot reads each cell individually, so
// a snapshot taken under concurrent writes is approximately consistent
// (each cell is exact, the set may straddle a few in-flight updates) —
// fine for telemetry, documented so nobody builds invariants on it.
type Histogram struct {
	sum     atomic.Uint64 // total of observed values, ns
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one value in nanoseconds. Negative values clamp to
// zero (they can only come from clock anomalies; losing them would skew
// rates, crediting them negatively would corrupt the sum).
//
// voiceprintvet:noescape
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(uint64(ns))
	h.buckets[bucketIndex(uint64(ns))].Add(1)
}

// ObserveDuration records one duration.
//
// voiceprintvet:noescape
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is a mergeable point-in-time copy of a Histogram.
// Count is derived from the bucket counts, so Count == Σ Buckets always
// holds (the Prometheus _count/_bucket{le="+Inf"} invariant).
type HistogramSnapshot struct {
	Count, Sum uint64
	Buckets    [NumBuckets]uint64
}

// Merge folds o into s bucket-by-bucket; both snapshots must come from
// this package's fixed layout, which is guaranteed by the type.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed value in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in nanoseconds by
// linear interpolation within the covering bucket. Estimates carry the
// bucket layout's resolution (a factor-of-two band); values landing in
// the +Inf bucket report the last finite bound. Returns 0 on an empty
// snapshot, and clamps q into [0, 1].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) < target {
			continue
		}
		upper := BucketUpper(i)
		var lower float64
		if i > 0 {
			lower = BucketUpper(i - 1)
		}
		if math.IsInf(upper, 1) {
			return lower
		}
		frac := (target - float64(cum-c)) / float64(c)
		return lower + (upper-lower)*frac
	}
	return BucketUpper(NumBuckets - 2)
}
