// Package metrics scores Sybil detection outcomes using the paper's
// Equations 10-13: per-receiver per-period detection rate (detected
// illegitimate identities over all illegitimate identities heard) and
// false positive rate (normal identities wrongly flagged over all normal
// identities heard), averaged over receivers and detection periods.
package metrics

import (
	"errors"
	"fmt"

	"voiceprint/internal/vanet"
)

// Counts are the raw tallies of one detection instance (one receiver, one
// detection period).
type Counts struct {
	// TruePositives N_T: illegitimate identities flagged.
	TruePositives int
	// FalsePositives N_F: normal identities flagged.
	FalsePositives int
	// Illegitimate is the denominator of Equation 10: heard malicious +
	// Sybil identities.
	Illegitimate int
	// Normal is the denominator of Equation 11: heard normal identities.
	Normal int
}

// Score tallies one detection outcome: heard is every identity the
// receiver observed this period, suspects the identities the detector
// flagged, truth the ground truth. Suspects not in heard are ignored (a
// detector cannot flag what it never heard; flagging such an ID indicates
// a bug upstream and is surfaced as an error).
func Score(heard []vanet.NodeID, suspects map[vanet.NodeID]bool, truth vanet.Truth) (Counts, error) {
	heardSet := make(map[vanet.NodeID]bool, len(heard))
	for _, id := range heard {
		heardSet[id] = true
	}
	for id := range suspects {
		if suspects[id] && !heardSet[id] {
			return Counts{}, fmt.Errorf("metrics: suspect %d was never heard", id)
		}
	}
	var c Counts
	for _, id := range heard {
		if truth.Illegitimate(id) {
			c.Illegitimate++
			if suspects[id] {
				c.TruePositives++
			}
		} else {
			c.Normal++
			if suspects[id] {
				c.FalsePositives++
			}
		}
	}
	return c, nil
}

// DR is Equation 10 for one instance. Instances with no illegitimate
// identities heard return ok=false (the term is undefined and must be
// skipped, not counted as zero).
func (c Counts) DR() (float64, bool) {
	if c.Illegitimate == 0 {
		return 0, false
	}
	return float64(c.TruePositives) / float64(c.Illegitimate), true
}

// FPR is Equation 11 for one instance; ok=false when no normal identities
// were heard.
func (c Counts) FPR() (float64, bool) {
	if c.Normal == 0 {
		return 0, false
	}
	return float64(c.FalsePositives) / float64(c.Normal), true
}

// Aggregator accumulates per-instance rates into the averages of
// Equations 12-13.
type Aggregator struct {
	drSum    float64
	drCount  int
	fprSum   float64
	fprCount int
}

// Add folds in one instance.
func (a *Aggregator) Add(c Counts) {
	if dr, ok := c.DR(); ok {
		a.drSum += dr
		a.drCount++
	}
	if fpr, ok := c.FPR(); ok {
		a.fprSum += fpr
		a.fprCount++
	}
}

// ErrNoInstances is returned when an average is requested before any
// instance contributed.
var ErrNoInstances = errors.New("metrics: no detection instances")

// MeanDR is Equation 12.
func (a *Aggregator) MeanDR() (float64, error) {
	if a.drCount == 0 {
		return 0, ErrNoInstances
	}
	return a.drSum / float64(a.drCount), nil
}

// MeanFPR is Equation 13.
func (a *Aggregator) MeanFPR() (float64, error) {
	if a.fprCount == 0 {
		return 0, ErrNoInstances
	}
	return a.fprSum / float64(a.fprCount), nil
}

// Instances returns how many instances contributed a DR term.
func (a *Aggregator) Instances() int { return a.drCount }

// Extended classification quality, beyond the paper's two metrics, for the
// ablation experiments.

// Precision is TP / (TP + FP); ok=false when nothing was flagged.
func (c Counts) Precision() (float64, bool) {
	flagged := c.TruePositives + c.FalsePositives
	if flagged == 0 {
		return 0, false
	}
	return float64(c.TruePositives) / float64(flagged), true
}

// F1 is the harmonic mean of precision and recall (DR); ok=false when
// undefined.
func (c Counts) F1() (float64, bool) {
	p, okP := c.Precision()
	r, okR := c.DR()
	if !okP || !okR || p+r == 0 {
		return 0, false
	}
	return 2 * p * r / (p + r), true
}
