package metrics

import (
	"math"
	"testing"

	"voiceprint/internal/vanet"
)

func testTruth() vanet.Truth {
	return vanet.Truth{
		Sybil:     map[vanet.NodeID]bool{101: true, 102: true},
		Malicious: map[vanet.NodeID]bool{1: true},
	}
}

func TestScore(t *testing.T) {
	heard := []vanet.NodeID{1, 2, 3, 101, 102}
	suspects := map[vanet.NodeID]bool{1: true, 101: true, 102: true, 3: true}
	c, err := Score(heard, suspects, testTruth())
	if err != nil {
		t.Fatal(err)
	}
	if c.TruePositives != 3 {
		t.Errorf("TP = %d, want 3", c.TruePositives)
	}
	if c.FalsePositives != 1 {
		t.Errorf("FP = %d, want 1", c.FalsePositives)
	}
	if c.Illegitimate != 3 || c.Normal != 2 {
		t.Errorf("denominators = (%d, %d), want (3, 2)", c.Illegitimate, c.Normal)
	}
	dr, ok := c.DR()
	if !ok || dr != 1 {
		t.Errorf("DR = %v/%v, want 1", dr, ok)
	}
	fpr, ok := c.FPR()
	if !ok || fpr != 0.5 {
		t.Errorf("FPR = %v/%v, want 0.5", fpr, ok)
	}
}

func TestScoreRejectsUnheardSuspect(t *testing.T) {
	heard := []vanet.NodeID{2}
	suspects := map[vanet.NodeID]bool{99: true}
	if _, err := Score(heard, suspects, testTruth()); err == nil {
		t.Error("flagging an unheard identity should error")
	}
	// A false entry for an unheard ID is harmless.
	suspects = map[vanet.NodeID]bool{99: false, 2: true}
	if _, err := Score(heard, suspects, testTruth()); err != nil {
		t.Errorf("false-valued suspect entry should be ignored: %v", err)
	}
}

func TestDRUndefinedWithoutIllegitimate(t *testing.T) {
	c := Counts{Normal: 5}
	if _, ok := c.DR(); ok {
		t.Error("DR should be undefined with zero illegitimate")
	}
	if fpr, ok := c.FPR(); !ok || fpr != 0 {
		t.Error("FPR should be defined and 0")
	}
}

func TestFPRUndefinedWithoutNormal(t *testing.T) {
	c := Counts{Illegitimate: 4, TruePositives: 2}
	if _, ok := c.FPR(); ok {
		t.Error("FPR should be undefined with zero normal")
	}
	if dr, ok := c.DR(); !ok || dr != 0.5 {
		t.Errorf("DR = %v/%v, want 0.5", dr, ok)
	}
}

func TestAggregator(t *testing.T) {
	var a Aggregator
	if _, err := a.MeanDR(); err != ErrNoInstances {
		t.Errorf("empty MeanDR err = %v, want ErrNoInstances", err)
	}
	if _, err := a.MeanFPR(); err != ErrNoInstances {
		t.Errorf("empty MeanFPR err = %v, want ErrNoInstances", err)
	}
	a.Add(Counts{TruePositives: 4, Illegitimate: 4, Normal: 10})                    // DR 1, FPR 0
	a.Add(Counts{TruePositives: 1, Illegitimate: 2, FalsePositives: 1, Normal: 10}) // DR 0.5, FPR 0.1
	a.Add(Counts{Normal: 5})                                                        // DR undefined, FPR 0
	dr, err := a.MeanDR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dr-0.75) > 1e-12 {
		t.Errorf("MeanDR = %v, want 0.75 (undefined instance skipped)", dr)
	}
	fpr, err := a.MeanFPR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fpr-0.1/3) > 1e-12 {
		t.Errorf("MeanFPR = %v, want %v", fpr, 0.1/3)
	}
	if a.Instances() != 2 {
		t.Errorf("Instances = %d, want 2", a.Instances())
	}
}

func TestPrecisionAndF1(t *testing.T) {
	c := Counts{TruePositives: 3, FalsePositives: 1, Illegitimate: 4, Normal: 8}
	p, ok := c.Precision()
	if !ok || p != 0.75 {
		t.Errorf("Precision = %v/%v, want 0.75", p, ok)
	}
	f1, ok := c.F1()
	want := 2 * 0.75 * 0.75 / 1.5
	if !ok || math.Abs(f1-want) > 1e-12 {
		t.Errorf("F1 = %v/%v, want %v", f1, ok, want)
	}
	empty := Counts{Illegitimate: 2, Normal: 2}
	if _, ok := empty.Precision(); ok {
		t.Error("Precision undefined with nothing flagged")
	}
	if _, ok := empty.F1(); ok {
		t.Error("F1 undefined with nothing flagged")
	}
}
