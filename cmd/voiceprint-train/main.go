// Command voiceprint-train completes the offline workflow: given a trace
// CSV (cmd/vanet-sim) and its ground-truth sidecar, it harvests every
// labelled pairwise comparison (the Figure 10 procedure) and trains the
// density-adaptive decision boundary, printing the k and b to feed
// cmd/voiceprint.
//
// Usage:
//
//	voiceprint-train -trace trace.csv -truth truth.csv \
//	                 [-observation 20s -period 20s -range 1000]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
	"voiceprint/internal/timeseries"
	"voiceprint/internal/trace"
	"voiceprint/internal/vanet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "voiceprint-train: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	tracePath := flag.String("trace", "", "input trace CSV (required)")
	truthPath := flag.String("truth", "", "ground-truth CSV from vanet-sim (required)")
	observation := flag.Duration("observation", 20*time.Second, "observation window")
	period := flag.Duration("period", 20*time.Second, "detection period")
	maxRange := flag.Float64("range", 1000, "assumed max transmission range (m)")
	flag.Parse()
	if *tracePath == "" || *truthPath == "" {
		return fmt.Errorf("missing -trace or -truth (see -h)")
	}

	truth, err := readTruth(*truthPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}

	byReceiver := make(map[vanet.NodeID][]trace.Record)
	var horizon time.Duration
	for _, r := range records {
		byReceiver[r.Receiver] = append(byReceiver[r.Receiver], r)
		if r.T > horizon {
			horizon = r.T
		}
	}

	harvester, err := core.New(core.DefaultConfig(lda.Boundary{K: 0, B: -1}))
	if err != nil {
		return err
	}
	var points []lda.Point
	receivers := make([]vanet.NodeID, 0, len(byReceiver))
	for id := range byReceiver {
		receivers = append(receivers, id)
	}
	sort.Slice(receivers, func(i, j int) bool { return receivers[i] < receivers[j] })
	for _, recv := range receivers {
		series, err := trace.ToSeries(byReceiver[recv])
		if err != nil {
			return err
		}
		est, err := core.NewDensityEstimator(*maxRange)
		if err != nil {
			return err
		}
		for end := *period; end <= horizon+*period; end += *period {
			from := end - *observation
			if from < 0 {
				from = 0
			}
			input := make(map[vanet.NodeID]*timeseries.Series, len(series))
			for id, s := range series {
				w := s.Window(from, end)
				if w.Len() > 0 {
					input[id] = w
				}
			}
			if len(input) == 0 {
				continue
			}
			heard := make([]vanet.NodeID, 0, len(input))
			for id := range input {
				heard = append(heard, id)
			}
			density := est.Estimate(heard)
			res, err := harvester.Detect(input, density)
			if err != nil {
				return err
			}
			for _, p := range res.Pairs {
				points = append(points, lda.Point{
					Density:   density,
					Distance:  p.Normalized,
					SybilPair: truth.SybilPair(p.A, p.B),
				})
			}
		}
	}

	boundary, err := lda.TrainLine(points, 8)
	if err != nil {
		return err
	}
	sybil, normal := 0, 0
	for _, p := range points {
		if p.SybilPair {
			sybil++
		} else {
			normal++
		}
	}
	fmt.Printf("harvested %d pairs (%d sybil, %d normal)\n", len(points), sybil, normal)
	fmt.Printf("trained boundary: %v\n", boundary)
	fmt.Printf("training accuracy: %.4f\n", lda.Accuracy(boundary, points))
	fmt.Printf("\nrun detection with:\n  voiceprint -trace %s -k %.6g -b %.6g\n",
		*tracePath, boundary.K, boundary.B)
	return nil
}

// readTruth parses the vanet-sim sidecar: id,role,owner.
func readTruth(path string) (vanet.Truth, error) {
	truth := vanet.Truth{
		Sybil:     make(map[vanet.NodeID]bool),
		Malicious: make(map[vanet.NodeID]bool),
		Owner:     make(map[vanet.NodeID]vanet.NodeID),
	}
	f, err := os.Open(path)
	if err != nil {
		return truth, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return truth, err
	}
	if len(rows) == 0 || rows[0][0] != "id" {
		return truth, fmt.Errorf("unexpected truth header")
	}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return truth, fmt.Errorf("truth row %d: want 3 columns", i+2)
		}
		id, err := strconv.ParseUint(row[0], 10, 32)
		if err != nil {
			return truth, fmt.Errorf("truth row %d: %w", i+2, err)
		}
		owner, err := strconv.ParseUint(row[2], 10, 32)
		if err != nil {
			return truth, fmt.Errorf("truth row %d: %w", i+2, err)
		}
		nid := vanet.NodeID(id)
		truth.Owner[nid] = vanet.NodeID(owner)
		switch row[1] {
		case "sybil":
			truth.Sybil[nid] = true
		case "malicious":
			truth.Malicious[nid] = true
		case "normal":
		default:
			return truth, fmt.Errorf("truth row %d: unknown role %q", i+2, row[1])
		}
	}
	return truth, nil
}
