// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// outputs).
//
// Usage:
//
//	experiments [-quick] [-seed N] [list|all|<id>...]
//
// IDs: fig5, table4, fig6_7, fig9, fig10, fig11a, fig11b, fig13,
// complexity, fastdtw, ablation-classifier, ablation-detector,
// smart-attack, sch-rate, scorecard.
//
// scorecard replays the adversarial campaign through a live daemon
// (fixed seed; -seed does not apply) and supports -scorecard-out to
// write SCORECARD.json and -scorecard-baseline to gate against a
// committed baseline (non-zero exit on regression).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"voiceprint/internal/experiments"
	"voiceprint/internal/lda"
	"voiceprint/internal/plot"
	"voiceprint/internal/scorecard"
)

func main() {
	quick := flag.Bool("quick", false, "reduced configurations (~1 min total)")
	seed := flag.Int64("seed", 1, "base random seed")
	svgDir := flag.String("svg", "", "also write SVG charts (fig10, fig11a/b) into this directory")
	scorecardOut := flag.String("scorecard-out", "", "scorecard: write SCORECARD.json to this path")
	scorecardBaseline := flag.String("scorecard-baseline", "", "scorecard: compare against this committed SCORECARD.json and exit non-zero on regression")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = []string{"table1", "fig9", "fig5", "table4", "fig6_7", "fig10", "fig11a",
			"fig11b", "fig13", "complexity", "fastdtw",
			"ablation-classifier", "ablation-detector", "smart-attack", "sch-rate"}
	}
	if len(args) == 1 && args[0] == "list" {
		fmt.Println("table1 fig5 table4 fig6_7 fig9 fig10 fig11a fig11b fig13 complexity fastdtw ablation-classifier ablation-detector smart-attack sch-rate scorecard")
		return
	}
	r := &runner{
		quick:             *quick,
		seed:              *seed,
		svgDir:            *svgDir,
		scorecardOut:      *scorecardOut,
		scorecardBaseline: *scorecardBaseline,
	}
	for _, id := range args {
		start := time.Now()
		if err := r.run(id); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

type runner struct {
	quick             bool
	seed              int64
	svgDir            string
	scorecardOut      string
	scorecardBaseline string

	// trained artifacts, produced lazily by fig10 and reused downstream.
	trained *experiments.Fig10Result
	// harvests kept for the classifier ablation.
	holdout []experiments.PairSample
}

func (r *runner) densities() []float64 {
	if r.quick {
		return []float64{10, 40, 80}
	}
	return []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
}

func (r *runner) runsPerDensity() int {
	if r.quick {
		return 1
	}
	return 5
}

func (r *runner) duration() time.Duration {
	if r.quick {
		return 60 * time.Second
	}
	return 100 * time.Second
}

// train runs (or reuses) the Figure 10 boundary training.
func (r *runner) train() (*experiments.Fig10Result, error) {
	if r.trained != nil {
		return r.trained, nil
	}
	cfg := experiments.Fig10Config{
		Densities:      r.densities(),
		RunsPerDensity: r.runsPerDensity(),
		Seed:           r.seed + 1000,
		Duration:       r.duration(),
	}
	if r.quick {
		cfg.MaxObservers = 3
	}
	res, err := experiments.Fig10(cfg)
	if err != nil {
		return nil, err
	}
	r.trained = res
	return res, nil
}

func (r *runner) run(id string) error {
	switch id {
	case "fig5":
		cfg := experiments.Fig5Config{Seed: r.seed}
		if r.quick {
			cfg.StationaryDuration = time.Minute
			cfg.MovingSegments = 2
		}
		res, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		for _, h := range res.Histograms {
			fmt.Println(h)
		}
	case "table1":
		fmt.Println(experiments.Table1().String())
	case "table4":
		res, err := experiments.Table4(experiments.Table4Config{Seed: r.seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig6_7":
		cfg := experiments.Fig6And7Config{Seed: r.seed}
		if r.quick {
			cfg.Duration = time.Minute
		}
		res, err := experiments.Fig6And7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig9":
		res, err := experiments.Fig9()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig10":
		res, err := r.train()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := r.writeSVG("fig10.svg", res.Chart()); err != nil {
			return err
		}
	case "fig11a", "fig11b":
		trained, err := r.train()
		if err != nil {
			return err
		}
		cfg := experiments.Fig11Config{
			Densities:   r.densities(),
			Seed:        r.seed + 2000,
			Duration:    r.duration(),
			ModelChange: id == "fig11b",
			Boundary:    trained.Boundary,
		}
		if r.quick {
			cfg.SeedsPerDensity = 1
		}
		res, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		drChart, fprChart := res.Charts()
		if err := r.writeSVG(id+"_dr.svg", drChart); err != nil {
			return err
		}
		if err := r.writeSVG(id+"_fpr.svg", fprChart); err != nil {
			return err
		}
	case "fig13":
		// Like the paper's field test, use a hand-set constant threshold
		// (theirs: 0.05046 at 4 vhls/km): with only six identities the
		// min-max normalization is too coarse for the sweep-trained line.
		cfg := experiments.Fig13Config{
			Seed:     r.seed + 3000,
			Boundary: lda.Constant(0.05),
		}
		res, err := experiments.Fig13(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "complexity":
		res, err := experiments.Complexity(r.seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fastdtw":
		trials := 30
		if r.quick {
			trials = 10
		}
		res, err := experiments.FastDTWAccuracy(r.seed, 200, trials)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablation-classifier":
		trained, err := r.train()
		if err != nil {
			return err
		}
		if r.holdout == nil {
			hold, err := experiments.Fig10(experiments.Fig10Config{
				Densities:      r.densities(),
				RunsPerDensity: 1,
				Seed:           r.seed + 4000,
				Duration:       r.duration(),
				MaxObservers:   3,
			})
			if err != nil {
				return err
			}
			r.holdout = hold.Points
		}
		res, err := experiments.ClassifierAblation(trained.Points, r.holdout)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "smart-attack":
		trained, err := r.train()
		if err != nil {
			return err
		}
		res, err := experiments.SmartAttack(r.seed+6000, 40, r.duration(), trained.Boundary)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "sch-rate":
		trained, err := r.train()
		if err != nil {
			return err
		}
		res, err := experiments.SCHRate(r.seed+7000, 40, trained.Boundary)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablation-detector":
		trained, err := r.train()
		if err != nil {
			return err
		}
		densities := []float64{20, 60}
		if !r.quick {
			densities = []float64{10, 40, 80}
		}
		res, err := experiments.DetectorAblation(
			"Ablations A2-A4 — detector variants across densities",
			experiments.StandardDetectorVariants(), densities,
			trained.Boundary, 0, r.seed+5000, r.duration())
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "scorecard":
		// The adversarial campaign grade: fixed seed and boundary (the
		// -seed flag deliberately does not apply — the committed
		// baseline pins scorecard.CampaignSeed).
		return r.runScorecard(false)
	case "scorecard-fusion":
		// The same campaign graded with the fusion detector enabled
		// (position consistency signal + cross-receiver cliques).
		return r.runScorecard(true)
	default:
		return fmt.Errorf("unknown experiment %q (try 'list')", id)
	}
	return nil
}

// runScorecard grades the adversarial campaign (plain or fused),
// honoring -scorecard-out and -scorecard-baseline.
func (r *runner) runScorecard(fused bool) error {
	label := "scorecard"
	runAll := scorecard.RunAll
	if fused {
		label = "fusion scorecard"
		runAll = scorecard.RunAllFused
	}
	card, err := runAll(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("Adversarial scenario %s (seed %d, boundary k=%g b=%g)\n\n%s",
		label, card.Seed, card.BoundaryK, card.BoundaryB, card.Table())
	if r.scorecardOut != "" {
		data, err := card.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.scorecardOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", r.scorecardOut)
	}
	if r.scorecardBaseline != "" {
		data, err := os.ReadFile(r.scorecardBaseline)
		if err != nil {
			return err
		}
		baseline, err := scorecard.Decode(data)
		if err != nil {
			return err
		}
		if err := scorecard.Gate(card, baseline); err != nil {
			return err
		}
		fmt.Printf("[%s within tolerances of %s]\n", label, r.scorecardBaseline)
	}
	return nil
}

// writeSVG drops a chart into the -svg directory (no-op when unset).
func (r *runner) writeSVG(name string, chart *plot.Chart) error {
	if r.svgDir == "" {
		return nil
	}
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(r.svgDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(r.svgDir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
