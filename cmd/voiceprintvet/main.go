// Command voiceprintvet is the repository's invariant multichecker: a
// `go vet -vettool` compatible analysis driver enforcing the guarantees
// the Voiceprint reproduction depends on — deterministic detection
// output, NaN/Inf safety at every RSSI boundary, the zero-alloc
// observer hot path, a drift-proof telemetry surface, and no internal
// use of deprecated shims.
//
// Usage:
//
//	go build -o bin/voiceprintvet ./cmd/voiceprintvet
//	go vet -vettool=bin/voiceprintvet ./...   # full modular analysis
//	bin/voiceprintvet ./...                   # standalone, non-test files
//	bin/voiceprintvet escape ./...            # noescape budget gate (-m=2)
//	bin/voiceprintvet help                    # list analyzers
//
// Suppress a deliberate exception with
//
//	//voiceprintvet:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory. See DESIGN.md §8 for each analyzer's invariant.
package main

import (
	"os"

	"voiceprint/internal/analysis/deprecated"
	"voiceprint/internal/analysis/escapebudget"
	"voiceprint/internal/analysis/goroutinehygiene"
	"voiceprint/internal/analysis/lockdiscipline"
	"voiceprint/internal/analysis/metricnames"
	"voiceprint/internal/analysis/nondeterminism"
	"voiceprint/internal/analysis/nonfinite"
	"voiceprint/internal/analysis/observerguard"
	"voiceprint/internal/analysis/vet"
)

func main() {
	// The escape gate cannot run under the unitchecker protocol (go vet
	// never forwards -m diagnostics to vettools), so it dispatches
	// before the protocol handshake.
	if len(os.Args) > 1 && os.Args[1] == "escape" {
		os.Exit(escapebudget.Main(os.Args[2:]))
	}
	vet.Main(
		nondeterminism.Analyzer,
		nonfinite.Analyzer,
		observerguard.Analyzer,
		metricnames.Analyzer,
		deprecated.Analyzer,
		lockdiscipline.Analyzer,
		goroutinehygiene.Analyzer,
	)
}
