// Command voiceprint runs the Voiceprint Sybil detector offline over a
// recorded RSSI trace (the CSV format written by cmd/vanet-sim or by the
// trace package), the way the paper's field-test laptops post-processed
// their logs.
//
// Usage:
//
//	voiceprint -trace trace.csv [-k 0.000025 -b 0.0067] \
//	           [-observation 20s -period 20s -range 1000]
//
// Output: per receiver and detection period, the flagged Sybil suspects
// and the pairwise distances that convicted them.
//
// The CLI is a thin shell over the same streaming pipeline the
// voiceprintd daemon runs — per-receiver core.Monitor instances fed
// through service.Replay at infinite speedup — so the offline and online
// paths cannot drift apart.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
	"voiceprint/internal/service"
	"voiceprint/internal/vanet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "voiceprint: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	tracePath := flag.String("trace", "", "input trace CSV (required)")
	k := flag.Float64("k", 0.000025, "boundary slope (Figure 10)")
	b := flag.Float64("b", 0.0067, "boundary intercept (Figure 10)")
	observation := flag.Duration("observation", 20*time.Second, "observation window")
	period := flag.Duration("period", 20*time.Second, "detection period")
	maxRange := flag.Float64("range", 1000, "assumed max transmission range (m), for Eq 9 density estimation")
	verbose := flag.Bool("v", false, "print every pairwise distance")
	flag.Parse()
	if *tracePath == "" {
		return fmt.Errorf("missing -trace (see -h)")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()

	cfg := core.DefaultConfig(lda.Boundary{K: *k, B: *b})
	cfg.ObservationTime = *observation

	var outcomes []service.RoundOutcome
	_, err = service.Replay(context.Background(), f, service.ReplayConfig{
		Registry: service.RegistryConfig{
			Monitor: core.MonitorConfig{
				Detector:  cfg,
				MaxRangeM: *maxRange,
			},
		},
		Period: *period,
	}, nil, func(out service.RoundOutcome) {
		outcomes = append(outcomes, out)
	})
	if err != nil {
		return err
	}

	// Group by receiver, then time, preserving the historical per-receiver
	// report layout.
	sort.SliceStable(outcomes, func(i, j int) bool {
		if outcomes[i].Recv != outcomes[j].Recv {
			return outcomes[i].Recv < outcomes[j].Recv
		}
		return outcomes[i].At < outcomes[j].At
	})
	for _, out := range outcomes {
		if out.Err != nil {
			return fmt.Errorf("receiver %d at %v: %w", out.Recv, out.At, out.Err)
		}
		res := out.Result
		if len(res.Suspects) == 0 && !*verbose {
			continue
		}
		// WindowEnd is the boundary the monitor actually evaluated; with
		// the fixed-boundary clamp it always equals the scheduled round
		// time, never the newest observation the stream had raced ahead to.
		from := res.WindowEnd - *observation
		if from < 0 {
			from = 0
		}
		suspects := make([]vanet.NodeID, 0, len(res.Suspects))
		for id := range res.Suspects {
			suspects = append(suspects, id)
		}
		sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
		cached := ""
		if res.Cached {
			cached = " (cached)"
		}
		fmt.Printf("receiver %d t=[%v,%v) den=%.1f considered=%d suspects=%v%s\n",
			out.Recv, from, res.WindowEnd, res.Density, len(res.Considered), suspects, cached)
		if *verbose {
			for _, p := range res.Pairs {
				fmt.Printf("  (%d,%d) raw=%.5f norm=%.4f flagged=%v\n",
					p.A, p.B, p.Raw, p.Normalized, p.Flagged)
			}
		}
	}
	return nil
}
