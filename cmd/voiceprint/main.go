// Command voiceprint runs the Voiceprint Sybil detector offline over a
// recorded RSSI trace (the CSV format written by cmd/vanet-sim or by the
// trace package), the way the paper's field-test laptops post-processed
// their logs.
//
// Usage:
//
//	voiceprint -trace trace.csv [-k 0.000025 -b 0.0067] \
//	           [-observation 20s -period 20s -range 1000]
//
// Output: per receiver and detection period, the flagged Sybil suspects
// and the pairwise distances that convicted them.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/lda"
	"voiceprint/internal/timeseries"
	"voiceprint/internal/trace"
	"voiceprint/internal/vanet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "voiceprint: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	tracePath := flag.String("trace", "", "input trace CSV (required)")
	k := flag.Float64("k", 0.000025, "boundary slope (Figure 10)")
	b := flag.Float64("b", 0.0067, "boundary intercept (Figure 10)")
	observation := flag.Duration("observation", 20*time.Second, "observation window")
	period := flag.Duration("period", 20*time.Second, "detection period")
	maxRange := flag.Float64("range", 1000, "assumed max transmission range (m), for Eq 9 density estimation")
	verbose := flag.Bool("v", false, "print every pairwise distance")
	flag.Parse()
	if *tracePath == "" {
		return fmt.Errorf("missing -trace (see -h)")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}

	// Split records by receiver.
	byReceiver := make(map[vanet.NodeID][]trace.Record)
	var horizon time.Duration
	for _, r := range records {
		byReceiver[r.Receiver] = append(byReceiver[r.Receiver], r)
		if r.T > horizon {
			horizon = r.T
		}
	}
	receivers := make([]vanet.NodeID, 0, len(byReceiver))
	for id := range byReceiver {
		receivers = append(receivers, id)
	}
	sort.Slice(receivers, func(i, j int) bool { return receivers[i] < receivers[j] })

	det, err := core.New(core.DefaultConfig(lda.Boundary{K: *k, B: *b}))
	if err != nil {
		return err
	}

	for _, recv := range receivers {
		series, err := trace.ToSeries(byReceiver[recv])
		if err != nil {
			return err
		}
		est, err := core.NewDensityEstimator(*maxRange)
		if err != nil {
			return err
		}
		for end := *period; end <= horizon+*period; end += *period {
			from := end - *observation
			if from < 0 {
				from = 0
			}
			input := sliceSeries(series, from, end)
			if len(input) == 0 {
				continue
			}
			heard := make([]vanet.NodeID, 0, len(input))
			for id := range input {
				heard = append(heard, id)
			}
			density := est.Estimate(heard)
			res, err := det.Detect(input, density)
			if err != nil {
				return err
			}
			est.Record(res.Suspects)
			if len(res.Suspects) == 0 && !*verbose {
				continue
			}
			suspects := make([]vanet.NodeID, 0, len(res.Suspects))
			for id := range res.Suspects {
				suspects = append(suspects, id)
			}
			sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
			fmt.Printf("receiver %d t=[%v,%v) den=%.1f considered=%d suspects=%v\n",
				recv, from, end, density, len(res.Considered), suspects)
			if *verbose {
				for _, p := range res.Pairs {
					fmt.Printf("  (%d,%d) raw=%.5f norm=%.4f flagged=%v\n",
						p.A, p.B, p.Raw, p.Normalized, p.Flagged)
				}
			}
		}
	}
	return nil
}

// sliceSeries windows each sender's series to [from, to).
func sliceSeries(series map[vanet.NodeID]*timeseries.Series, from, to time.Duration) map[vanet.NodeID]*timeseries.Series {
	out := make(map[vanet.NodeID]*timeseries.Series, len(series))
	for id, s := range series {
		w := s.Window(from, to)
		if w.Len() > 0 {
			out[id] = w
		}
	}
	return out
}
