// Command voiceprintd is the streaming Voiceprint daemon: the online
// counterpart of the offline cmd/voiceprint CLI. It ingests RSSI
// observation streams over a line-delimited NDJSON protocol (TCP or a
// Unix socket), shards them into per-receiver detectors, runs detection
// rounds on a worker pool once per period, and publishes Sybil verdicts
// as an NDJSON event stream to every connected client. An HTTP admin
// surface exposes /healthz and /metrics.
//
// Live mode:
//
//	voiceprintd -listen 127.0.0.1:8474 -admin 127.0.0.1:8475 \
//	            [-k 0.000025 -b 0.0067] [-observation 20s -period 20s] [-fusion]
//
// -fusion enables the multi-signal detector: observations may carry a
// schema-1 "pos" field with the sender's claimed coordinates, graded by
// the claimed-position consistency signal inside every monitor and by
// the cross-receiver co-observation clique coordinator on synchronized
// detection rounds (live mode; replay rounds are per-receiver and skip
// the coordinator). Verdict events then carry per-signal attribution in
// a "signals" field.
//
// One observation per line, one verdict event per round per receiver:
//
//	→ {"recv":901,"sender":102,"t_ms":18400,"rssi":-71.25}
//	← {"type":"round","recv":901,"t_ms":20000,"density":4.5,
//	   "considered":9,"suspects":[1,101,102],"confirmed":[1,101,102]}
//
// Replay mode feeds a recorded trace CSV (the cmd/vanet-sim format)
// through the same ingest path at a configurable speedup and writes the
// event stream to stdout; -speed 0 replays as fast as the detector
// keeps up, making `voiceprintd -replay trace.csv` a drop-in streaming
// equivalent of `voiceprint -trace trace.csv`:
//
//	voiceprintd -replay trace.csv [-speed 10]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/fusion"
	"voiceprint/internal/lda"
	"voiceprint/internal/service"
	"voiceprint/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "voiceprintd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:8474", "TCP ingest/event listen address")
	socket := flag.String("socket", "", "Unix socket path (overrides -listen)")
	admin := flag.String("admin", "", "HTTP admin listen address (/healthz, /metrics); empty disables")
	k := flag.Float64("k", 0.000025, "boundary slope (Figure 10)")
	b := flag.Float64("b", 0.0067, "boundary intercept (Figure 10)")
	observation := flag.Duration("observation", 20*time.Second, "observation window")
	period := flag.Duration("period", 20*time.Second, "detection period")
	maxRange := flag.Float64("range", 1000, "max transmission range (m), for Eq 9 density estimation")
	confirmWindow := flag.Int("confirm-window", 1, "confirmation window N (rounds)")
	confirmNeed := flag.Int("confirm-need", 1, "flags needed within the window (K of N)")
	evictAfter := flag.Duration("evict-after", 0, "drop identities silent this long (0 = 2x observation)")
	tolerance := flag.Duration("reorder-tolerance", 500*time.Millisecond, "accept observations up to this far out of order")
	workers := flag.Int("workers", 0, "detection round worker pool size (0 = GOMAXPROCS)")
	prune := flag.Bool("prune", true, "LB_Keogh candidate pruning in the compare phase (bit-identical verdicts)")
	fusionOn := flag.Bool("fusion", false, "enable the multi-signal fusion detector: claimed-position consistency per monitor plus cross-receiver co-observation cliques on synchronized rounds")
	fusionAlpha := flag.Float64("fusion-alpha", 0, "position signal chi-square significance level (0 = default 0.001)")
	fusionMinCohort := flag.Int("fusion-min-cohort", 0, "fewest testable identities before the position mean test runs (0 = default 4)")
	fusionCorr := flag.Float64("fusion-corr-threshold", 0, "residual-correlation threshold flagging same-radio identity pairs (0 = default 0.93)")
	fusionPosQuorum := flag.Int("fusion-pos-quorum", 0, "receivers that must position-flag an identity to anchor a clique conviction (0 = default 2)")
	fusionEdgeQuorum := flag.Int("fusion-edge-quorum", 0, "receivers that must voiceprint-flag a pair to form a co-observation edge (0 = default 2)")
	ingestBuffer := flag.Int("ingest-buffer", 0, "per-connection observation buffer (0 = default 4096)")
	eventBuffer := flag.Int("event-buffer", 0, "per-connection outbound verdict buffer (0 = default 256)")
	maxLineBytes := flag.Int("max-line-bytes", 0, "max inbound NDJSON line length (0 = default 64KiB)")
	idleTimeout := flag.Duration("idle-timeout", 0, "disconnect clients silent this long (0 disables; pure subscribers never write)")
	writeTimeout := flag.Duration("write-timeout", 0, "evict clients whose event write blocks this long (0 = default 5s)")
	drainTimeout := flag.Duration("drain-timeout", 0, "graceful-shutdown flush budget before force-closing connections (0 = default 2s)")
	replay := flag.String("replay", "", "replay a trace CSV through the ingest path and exit")
	speed := flag.Float64("speed", 0, "replay speedup vs stream time (0 = as fast as possible)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory for durable detection state (empty disables)")
	walFsync := flag.String("wal-fsync", "interval", "WAL fsync policy: always, interval (group commit) or none")
	walFsyncInterval := flag.Duration("wal-fsync-interval", 0, "group-commit fsync period under -wal-fsync interval (0 = default 5ms)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "periodic WAL compaction cadence (0 = default 5m, negative disables)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof and /debug/vars on the admin address")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	ver := buildVersion()
	if *showVersion {
		fmt.Printf("voiceprintd %s %s\n", ver, runtime.Version())
		return nil
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level %q: %w", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	logger.Info("voiceprintd: starting", "version", ver, "go", runtime.Version())

	regCfg := service.RegistryConfig{
		Monitor: core.MonitorConfig{
			Detector:      core.DefaultConfig(lda.Boundary{K: *k, B: *b}),
			MaxRangeM:     *maxRange,
			ConfirmWindow: *confirmWindow,
			ConfirmNeed:   *confirmNeed,
			EvictAfter:    *evictAfter,
		},
		ReorderTolerance: *tolerance,
	}
	regCfg.Monitor.Detector.ObservationTime = *observation
	regCfg.Monitor.Detector.Workers = *workers
	regCfg.Monitor.Detector.LBPrune = *prune

	var coord service.RoundCoordinator
	if *fusionOn {
		pos, err := fusion.NewPositionSignal(fusion.PositionConfig{
			Alpha:         *fusionAlpha,
			MinCohort:     *fusionMinCohort,
			CorrThreshold: *fusionCorr,
		})
		if err != nil {
			return fmt.Errorf("-fusion: %w", err)
		}
		regCfg.Monitor.Fusion = core.FusionOptions{
			Enabled: true,
			Signals: []core.Signal{pos},
		}
		c, err := fusion.NewCoordinator(fusion.CoordinatorConfig{
			PosQuorum:  *fusionPosQuorum,
			EdgeQuorum: *fusionEdgeQuorum,
		})
		if err != nil {
			return fmt.Errorf("-fusion: %w", err)
		}
		coord = c
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replay != "" {
		return runReplay(ctx, *replay, regCfg, *period, *speed, *workers, logger)
	}

	cfg := service.Config{
		Network:      "tcp",
		Addr:         *listen,
		Registry:     regCfg,
		Period:       *period,
		Workers:      *workers,
		IngestBuffer: *ingestBuffer,
		EventBuffer:  *eventBuffer,
		MaxLineBytes: *maxLineBytes,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drainTimeout,
		Coordinator:  coord,
		Logger:       logger,
	}
	if *socket != "" {
		cfg.Network, cfg.Addr = "unix", *socket
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			return fmt.Errorf("-wal-fsync: %w", err)
		}
		cfg.WAL = &service.WALConfig{
			Dir:              *walDir,
			Fsync:            policy,
			FsyncInterval:    *walFsyncInterval,
			SnapshotInterval: *snapshotInterval,
		}
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		return err
	}
	logger.Info("voiceprintd: ingest listening",
		"network", cfg.Network, "addr", srv.Addr().String(), "period", *period)

	if *admin != "" {
		adminCfg := service.AdminConfig{
			Metrics:  srv.Metrics(),
			Registry: srv.Registry(),
			Health:   srv.Health,
			Version:  ver,
			Pprof:    *pprofFlag,
		}
		if *walDir != "" {
			adminCfg.Snapshot = srv.Snapshot
		}
		adminSrv := &http.Server{
			Addr:    *admin,
			Handler: service.NewAdminHandler(adminCfg),
		}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("voiceprintd: admin server failed", "err", err)
			}
		}()
		defer adminSrv.Close()
		logger.Info("voiceprintd: admin listening", "addr", *admin, "pprof", *pprofFlag)
	}

	err = srv.Serve(ctx)
	logger.Info("voiceprintd: drained, exiting")
	return err
}

// buildVersion resolves the daemon's version from the embedded build
// info: the module version when built from a tagged release, otherwise
// the VCS revision (with a +dirty marker for uncommitted changes).
func buildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := info.Main.Version
	if ver != "(devel)" && ver != "" {
		// A VCS-stamped build already carries the revision (and +dirty)
		// in its pseudo-version; don't append it twice.
		return ver
	}
	ver = "devel"
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		ver += "-" + rev
	}
	if dirty {
		ver += "+dirty"
	}
	return ver
}

// runReplay streams a trace CSV through the ingest path, printing the
// verdict event stream to stdout.
func runReplay(ctx context.Context, path string, regCfg service.RegistryConfig, period time.Duration, speed float64, workers int, logger *slog.Logger) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	metrics := &service.Metrics{}
	_, err = service.Replay(ctx, f, service.ReplayConfig{
		Registry: regCfg,
		Period:   period,
		Speed:    speed,
		Workers:  workers,
	}, metrics, func(out service.RoundOutcome) {
		os.Stdout.Write(service.EventFromOutcome(out).Encode())
	})
	if err != nil {
		return err
	}
	snap := metrics.Snapshot()
	logger.Info("voiceprintd: replay done",
		"observations", snap["observations_ingested_total"],
		"rounds", snap["rounds_run_total"],
		"rounds_cached", snap["rounds_skipped_unchanged_total"],
		"suspects_flagged", snap["suspects_flagged_total"],
		"stale_dropped", snap["stale_dropped_total"])
	return nil
}
