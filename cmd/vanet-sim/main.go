// Command vanet-sim runs one Table V highway simulation and writes the
// observers' RSSI reception logs as a CSV trace (the input format of
// cmd/voiceprint), plus a ground-truth sidecar listing the Sybil and
// malicious identities.
//
// Usage:
//
//	vanet-sim -density 40 -duration 100s -seed 1 -o trace.csv [-truth truth.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"voiceprint/internal/experiments"
	"voiceprint/internal/trace"
	"voiceprint/internal/vanet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "vanet-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	density := flag.Float64("density", 40, "traffic density in vehicles/km (10-100)")
	duration := flag.Duration("duration", 100*time.Second, "simulation duration")
	seed := flag.Int64("seed", 1, "random seed")
	observers := flag.Int("observers", 4, "recording receivers (0 = density-derived)")
	modelChange := flag.Bool("model-change", false, "switch propagation parameters every 30s (Figure 11b channel)")
	out := flag.String("o", "trace.csv", "output trace CSV path")
	truthOut := flag.String("truth", "", "optional ground-truth CSV path")
	flag.Parse()

	run, err := experiments.RunHighway(experiments.SimParams{
		DensityPerKm: *density,
		Seed:         *seed,
		Duration:     *duration,
		ModelChange:  *modelChange,
		MaxObservers: *observers,
	})
	if err != nil {
		return err
	}

	var records []trace.Record
	idxs := make([]int, 0, len(run.Engine.Logs()))
	for idx := range run.Engine.Logs() {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		records = append(records, trace.FromLog(run.Engine.Logs()[idx])...)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, records); err != nil {
		return err
	}
	fmt.Printf("wrote %d reception records from %d observers to %s\n",
		len(records), len(idxs), *out)

	if *truthOut != "" {
		if err := writeTruth(*truthOut, run.Truth); err != nil {
			return err
		}
		fmt.Printf("wrote ground truth to %s\n", *truthOut)
	}
	return nil
}

// writeTruth dumps identity roles one per line: id,role.
func writeTruth(path string, truth vanet.Truth) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ids := make([]vanet.NodeID, 0, len(truth.Owner))
	for id := range truth.Owner {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if _, err := fmt.Fprintln(f, "id,role,owner"); err != nil {
		return err
	}
	for _, id := range ids {
		role := "normal"
		if truth.Sybil[id] {
			role = "sybil"
		} else if truth.Malicious[id] {
			role = "malicious"
		}
		if _, err := fmt.Fprintf(f, "%d,%s,%d\n", id, role, truth.Owner[id]); err != nil {
			return err
		}
	}
	return nil
}
