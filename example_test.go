package voiceprint_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"voiceprint"
)

// ExampleNewMonitor streams beacons from three identities into a
// Monitor: identities 1 and 2 are one physical radio (one shared fading
// trajectory, independent measurement noise), identity 3 is a distinct
// vehicle. One detection round over the trailing window flags the pair.
func ExampleNewMonitor() {
	mon, err := voiceprint.NewMonitor(voiceprint.MonitorConfig{
		Detector: voiceprint.DefaultDetectorConfig(voiceprint.ConstantBoundary(0.05)),
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		t := time.Duration(i) * 100 * time.Millisecond
		// Sybil pair: the attacker's channel, sampled twice.
		shared := -60 + 10*math.Sin(float64(i)/6)
		mon.Observe(1, t, shared+0.3*rng.NormFloat64())
		mon.Observe(2, t, shared+0.3*rng.NormFloat64())
		// Independent vehicle on its own channel.
		mon.Observe(3, t, -70+8*math.Cos(float64(i)/5)+0.3*rng.NormFloat64())
	}

	res, err := mon.Detect()
	if err != nil {
		panic(err)
	}
	suspects := make([]int, 0, len(res.Suspects))
	for id := range res.Suspects {
		suspects = append(suspects, int(id))
	}
	sort.Ints(suspects)
	fmt.Println("suspects:", suspects)
	// Output: suspects: [1 2]
}
