// Package voiceprint is the public facade of the Voiceprint reproduction:
// RSSI-based Sybil attack detection for VANETs (Yao et al., DSN 2017).
//
// The primary API is the Detector: feed it the RSSI time series a vehicle
// recorded per neighboring identity during an observation window plus a
// traffic-density estimate, and it returns the identities whose series are
// suspiciously similar — fabricated Sybil identities of one physical
// radio. Detection is model-free (no radio propagation model),
// independent (local observations only) and infrastructure-free (no RSU).
//
//	boundary, _ := voiceprint.TrainBoundary(points)    // or a constant
//	det, _ := voiceprint.NewDetector(voiceprint.DefaultDetectorConfig(boundary))
//	res, _ := det.Detect(seriesByID, densityPerKm)
//	for id := range res.Suspects { ... }
//
// The package re-exports the building blocks a downstream user needs
// (time series, DTW, the classifier, the simulation substrate); the
// internal packages carry the full implementations and their tests. The
// experiment harness that regenerates every table and figure of the paper
// lives in internal/experiments and is driven by cmd/experiments.
package voiceprint

import (
	"time"

	"voiceprint/internal/core"
	"voiceprint/internal/dtw"
	"voiceprint/internal/lda"
	"voiceprint/internal/timeseries"
	"voiceprint/internal/vanet"
)

// NodeID identifies one broadcast identity.
type NodeID = vanet.NodeID

// Series is an RSSI time series for one identity.
type Series = timeseries.Series

// NewSeries returns an empty series with capacity for n samples.
func NewSeries(n int) *Series { return timeseries.New(n) }

// SeriesFromValues builds a series from evenly spaced RSSI values.
func SeriesFromValues(values []float64, period time.Duration) *Series {
	return timeseries.FromValues(values, period)
}

// Boundary is the density-adaptive decision rule D <= K*den + B.
type Boundary = lda.Boundary

// TrainingPoint is one labelled pairwise comparison for boundary training.
type TrainingPoint = lda.Point

// ConstantBoundary returns a fixed-threshold boundary (the paper's field
// test uses 0.05046).
func ConstantBoundary(threshold float64) Boundary {
	return lda.Constant(threshold)
}

// TrainBoundary fits the production decision boundary from labelled
// pairwise comparisons (see internal/lda.TrainLine).
func TrainBoundary(points []TrainingPoint) (Boundary, error) {
	return lda.TrainLine(points, 8)
}

// TrainBoundaryLDA fits the boundary with classic Linear Discriminant
// Analysis, the paper's stated method.
func TrainBoundaryLDA(points []TrainingPoint) (Boundary, error) {
	return lda.Train(points)
}

// DetectorConfig configures a Detector.
type DetectorConfig = core.Config

// Detector runs Voiceprint detection rounds.
type Detector = core.Detector

// DetectionResult is one round's outcome.
type DetectionResult = core.Result

// DefaultDetectorConfig returns the paper's Table V detector settings for
// a trained boundary.
func DefaultDetectorConfig(boundary Boundary) DetectorConfig {
	return core.DefaultConfig(boundary)
}

// NewDetector builds a Detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	return core.New(cfg)
}

// MonitorConfig configures a Monitor.
type MonitorConfig = core.MonitorConfig

// Monitor is the streaming layer above the Detector: feed it timestamped
// RSSI observations as they arrive and ask for detection rounds over the
// trailing observation window. It buffers per-identity series, evicts
// silent identities, estimates density from the identities in view
// (Equation 9), and runs multi-period confirmation across rounds — the
// online counterpart of driving a Detector by hand.
type Monitor = core.Monitor

// Result is one streaming detection round's outcome, including the
// window it evaluated and the post-round confirmation set.
type Result = core.Result

// NewMonitor builds a streaming Monitor:
//
//	mon, _ := voiceprint.NewMonitor(voiceprint.MonitorConfig{
//		Detector: voiceprint.DefaultDetectorConfig(boundary),
//	})
//	for _, o := range beacons {
//		mon.Observe(o.Sender, o.T, o.RSSI) // as they arrive
//	}
//	res, _ := mon.Detect() // round over the trailing window
//	for id := range res.Confirmed { ... }
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	return core.NewMonitor(cfg)
}

// EstimateDensity is the paper's Equation 9: traffic density in
// vehicles/km from the count of legitimate identities heard and the
// maximum transmission range in meters.
func EstimateDensity(heardLegit int, maxRangeM float64) (float64, error) {
	return core.EstimateDensity(heardLegit, maxRangeM)
}

// Confirmer implements the paper's multi-period confirmation suggestion:
// an identity is confirmed Sybil once flagged in `need` of the last
// `window` rounds.
type Confirmer = core.Confirmer

// NewConfirmer builds a Confirmer.
func NewConfirmer(window, need int) (*Confirmer, error) {
	return core.NewConfirmer(window, need)
}

// DTWDistance is the exact DTW distance (Equations 3-6, squared cost).
func DTWDistance(x, y []float64) (float64, error) {
	return dtw.Distance(x, y, nil)
}

// FastDTWDistance is the FastDTW approximation with the given radius.
func FastDTWDistance(x, y []float64, radius int) (float64, error) {
	return dtw.FastDistance(x, y, radius, nil)
}
