package voiceprint

// BENCH_pr7.json regeneration: compare-phase throughput with LB_Keogh
// pruning, early-abandoning banded DTW, and the dirty-pair cache,
// against the unpruned, uncached compare phase on the same input — the
// before/after record for the sub-quadratic compare work, alongside the
// BENCH_pr2.json sequential full-recompute reference. CI runs this once
// per push (see .github/workflows/ci.yml); regenerate locally with
//
//	VOICEPRINT_BENCH_JSON=1 go test -run TestWriteBenchPR7JSON .
//
// The scenario is the steady state the pruning work targets: a monitor
// that has heard the 25-second highway run re-detects at a fixed window
// end while a handful of identities (a beacon burst) keep appending
// observations. Every round therefore dirties 4 of the ~97 identities
// in view; the other ~4500 pairs are provably unchanged. The verdicts
// must be bit-identical across all three variants — that equality is
// asserted here, and the chaos/replay/crash fixtures cover it under
// fault injection.

import (
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"
)

// compareBenchRounds is sized so one variant runs a few seconds at
// baseline speed: long enough to average out scheduler noise, short
// enough for a per-push CI step.
const compareBenchRounds = 40

// compareBenchMonitor builds a monitor with the given compare-phase
// configuration and feeds it the full 25-second highway run,
// interleaved by timestamp (the monitor clock rejects reordered
// observations).
func compareBenchMonitor(t *testing.T, ids []NodeID, series map[NodeID]*Series, prune, disableCache bool) *Monitor {
	t.Helper()
	cfg := MonitorConfig{Detector: DefaultDetectorConfig(benchBoundary()), MaxRangeM: 1000}
	cfg.Detector.Workers = 1
	cfg.Detector.MinMedianRSSIDBm = 0 // keep the whole ~97-identity neighborhood in view
	cfg.Detector.LBPrune = prune
	cfg.DisablePairCache = disableCache
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type obs struct {
		id   NodeID
		t    time.Duration
		rssi float64
	}
	var all []obs
	for _, id := range ids {
		s := series[id]
		for i := 0; i < s.Len(); i++ {
			smp := s.At(i)
			all = append(all, obs{id, smp.T, smp.RSSI})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
	for _, o := range all {
		if err := mon.Observe(o.id, o.t, o.rssi); err != nil {
			t.Fatal(err)
		}
	}
	return mon
}

type compareBenchEntry struct {
	NsPerRound  int64   `json:"ns_per_round"`
	PairsPerSec float64 `json:"pairs_per_sec"`
}

func TestWriteBenchPR7JSON(t *testing.T) {
	if os.Getenv("VOICEPRINT_BENCH_JSON") == "" {
		t.Skip("set VOICEPRINT_BENCH_JSON=1 to regenerate BENCH_pr7.json")
	}
	series := detectBenchSeries(t)
	ids := make([]NodeID, 0, len(series))
	for id := range series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	end := 20 * time.Second

	variants := []struct {
		name                string
		prune, disableCache bool
	}{
		{"baseline_unpruned", false, true},
		{"pruned_cold", true, true},
		{"pruned_warm", true, false},
	}
	entries := make(map[string]compareBenchEntry, len(variants))
	pairs := 0
	var wantSuspects, wantConfirmed map[NodeID]bool
	for _, v := range variants {
		mon := compareBenchMonitor(t, ids, series, v.prune, v.disableCache)
		if _, err := mon.DetectAt(end); err != nil {
			t.Fatal(err)
		}
		dirty := ids[:4]
		start := time.Now()
		for r := 0; r < compareBenchRounds; r++ {
			for di, id := range dirty {
				rssi := -58.0 - 4.5*float64(di) - 0.3*float64(r%7)
				if err := mon.Observe(id, end, rssi); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := mon.DetectAt(end); err != nil {
				t.Fatal(err)
			}
		}
		perRound := time.Since(start) / compareBenchRounds
		res, err := mon.DetectAt(end)
		if err != nil {
			t.Fatal(err)
		}
		if pairs == 0 {
			pairs = len(res.Pairs)
			wantSuspects, wantConfirmed = res.Suspects, res.Confirmed
		} else if len(res.Pairs) != pairs {
			t.Errorf("%s: %d pairs per round, want %d", v.name, len(res.Pairs), pairs)
		}
		// The acceptance bar for pruning is that it is invisible in the
		// verdict: every variant must convict exactly the same set.
		if !sameIDSet(res.Suspects, wantSuspects) || !sameIDSet(res.Confirmed, wantConfirmed) {
			t.Errorf("%s: suspects/confirmed diverge from %s", v.name, variants[0].name)
		}
		entries[v.name] = compareBenchEntry{
			NsPerRound:  perRound.Nanoseconds(),
			PairsPerSec: float64(pairs) / perRound.Seconds(),
		}
	}

	base, warm := entries["baseline_unpruned"], entries["pruned_warm"]
	speedup := float64(base.NsPerRound) / float64(max64(warm.NsPerRound, 1))
	// Measured ~11x on the reference builder; the CI floor leaves head-
	// room for noisy shared runners.
	if speedup < 6 {
		t.Errorf("warm incremental round is %.1fx the unpruned baseline; acceptance needs >=6x (target 10x)", speedup)
	}
	doc := struct {
		Benchmark      string                       `json:"benchmark"`
		Pairs          int                          `json:"pairs_per_round"`
		DirtyPerRound  int                          `json:"dirty_identities_per_round"`
		Variants       map[string]compareBenchEntry `json:"variants"`
		Speedup        float64                      `json:"speedup_warm_vs_baseline"`
		SpeedupCold    float64                      `json:"speedup_cold_vs_baseline"`
		PR2PairsPerSec float64                      `json:"pr2_sequential_pairs_per_sec"`
	}{
		Benchmark:      "incremental compare phase (97 identities, highway density 40/km, 4 dirty identities per round)",
		Pairs:          pairs,
		DirtyPerRound:  4,
		Variants:       entries,
		Speedup:        speedup,
		SpeedupCold:    float64(base.NsPerRound) / float64(max64(entries["pruned_cold"].NsPerRound, 1)),
		PR2PairsPerSec: 3160 / 0.042616913, // BENCH_pr2.json sequential: 3160 pairs in 42.6 ms
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr7.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_pr7.json: warm %.1fx / cold %.1fx vs unpruned baseline (%d pairs, %.0f pairs/sec warm)",
		doc.Speedup, doc.SpeedupCold, pairs, warm.PairsPerSec)
}

func sameIDSet(a, b map[NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}
